#include "src/adt/btree.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "src/adt/apply_order.h"

namespace objectbase::adt {

struct BTree::Node {
  explicit Node(bool is_leaf) : leaf(is_leaf) {}

  bool leaf;
  std::vector<int64_t> keys;
  std::vector<int64_t> values;  // leaves only; values[i] pairs keys[i]
  std::vector<Node*> children;  // internal only; children.size()==keys.size()+1
  mutable std::shared_mutex latch;

  bool Full(int order) const { return static_cast<int>(keys.size()) >= order; }
};

BTree::BTree(int order) : order_(order < 3 ? 3 : order) {
  // An internal node with `order` keys splits into floor((order-1)/2) and
  // ceil((order-1)/2) keys (one moves up), so the occupancy floor must be
  // (order-1)/2; it also keeps merges within capacity:
  // 2*min + 1 <= order.
  min_keys_ = (order_ - 1) / 2;
  root_ = NewLeaf();
}

BTree::~BTree() { FreeTree(root_); }

BTree::Node* BTree::NewLeaf() { return new Node(/*is_leaf=*/true); }
BTree::Node* BTree::NewInternal() { return new Node(/*is_leaf=*/false); }

void BTree::FreeTree(Node* n) {
  if (n == nullptr) return;
  for (Node* c : n->children) FreeTree(c);
  delete n;
}

namespace {
// Index of the child to descend into: keys equal to a separator live in the
// right subtree (leaf separators are copied up from leaf fronts).
int ChildIndex(const std::vector<int64_t>& keys, int64_t key) {
  return static_cast<int>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}
}  // namespace

std::optional<int64_t> BTree::Lookup(int64_t key) const {
  std::shared_lock<std::shared_mutex> root_guard(root_latch_);
  const Node* node = root_;
  node->latch.lock_shared();
  root_guard.unlock();
  while (!node->leaf) {
    const Node* child = node->children[ChildIndex(node->keys, key)];
    child->latch.lock_shared();
    node->latch.unlock_shared();
    node = child;
  }
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  std::optional<int64_t> result;
  if (it != node->keys.end() && *it == key) {
    result = node->values[it - node->keys.begin()];
  }
  // Linearization point: the read is decided while the leaf latch pins the
  // observed version; reserve the apply-order key here (no-op unless the
  // runtime armed the hook).
  StampApplyOrder();
  node->latch.unlock_shared();
  return result;
}

void BTree::SplitChild(Node* parent, int idx) {
  // Caller holds exclusive latches on `parent` and the (full) child.
  Node* child = parent->children[idx];
  Node* right = child->leaf ? NewLeaf() : NewInternal();
  int64_t separator;
  if (child->leaf) {
    int mid = (order_ + 1) / 2;
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->values.assign(child->values.begin() + mid, child->values.end());
    child->keys.resize(mid);
    child->values.resize(mid);
    separator = right->keys.front();  // copied up
  } else {
    int mid = order_ / 2;
    separator = child->keys[mid];  // moved up
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    right->children.assign(child->children.begin() + mid + 1,
                           child->children.end());
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }
  parent->keys.insert(parent->keys.begin() + idx, separator);
  parent->children.insert(parent->children.begin() + idx + 1, right);
}

std::optional<int64_t> BTree::Insert(int64_t key, int64_t value) {
  std::unique_lock<std::shared_mutex> root_guard(root_latch_);
  Node* node = root_;
  node->latch.lock();
  if (node->Full(order_)) {
    // Pre-emptive root split: afterwards the root pointer is stable for the
    // rest of this insert, so the root guard can be dropped.
    Node* new_root = NewInternal();
    new_root->children.push_back(node);
    root_ = new_root;
    new_root->latch.lock();
    SplitChild(new_root, 0);
    node->latch.unlock();
    node = new_root;
  }
  root_guard.unlock();
  // Invariant on entry to each iteration: `node` is exclusively latched and
  // not full (so a child split below cannot propagate above it).
  while (!node->leaf) {
    int idx = ChildIndex(node->keys, key);
    Node* child = node->children[idx];
    child->latch.lock();
    if (child->Full(order_)) {
      SplitChild(node, idx);
      int new_idx = ChildIndex(node->keys, key);
      if (new_idx != idx) {
        Node* right = node->children[new_idx];
        right->latch.lock();
        child->latch.unlock();
        child = right;
      }
    }
    node->latch.unlock();
    node = child;
  }
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  std::optional<int64_t> old;
  if (it != node->keys.end() && *it == key) {
    size_t i = it - node->keys.begin();
    old = node->values[i];
    node->values[i] = value;
  } else {
    size_t i = it - node->keys.begin();
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + i, value);
    size_.fetch_add(1, std::memory_order_relaxed);
  }
  // Linearization point: the mutation is visible to any later leaf reader
  // the moment this latch drops; reserve the apply-order key inside it.
  StampApplyOrder();
  node->latch.unlock();
  return old;
}

BTree::Node* BTree::FixChildForErase(Node* parent, int idx) {
  // Caller holds exclusive latches on `parent` and child = children[idx],
  // which has exactly min_keys_ keys.  Returns the surviving, exclusively
  // latched node to descend into (the child itself, or the left sibling it
  // was merged into).  All sibling inspection happens under the sibling's
  // latch; this is race-free because structural changes to a node always
  // hold that node's latch, and we hold the parent latch so the sibling
  // pointers themselves are stable.
  Node* child = parent->children[idx];
  if (idx > 0) {
    Node* left = parent->children[idx - 1];
    left->latch.lock();
    if (static_cast<int>(left->keys.size()) > min_keys_) {
      // Borrow from the left sibling.
      if (child->leaf) {
        child->keys.insert(child->keys.begin(), left->keys.back());
        child->values.insert(child->values.begin(), left->values.back());
        left->keys.pop_back();
        left->values.pop_back();
        parent->keys[idx - 1] = child->keys.front();
      } else {
        child->keys.insert(child->keys.begin(), parent->keys[idx - 1]);
        child->children.insert(child->children.begin(),
                               left->children.back());
        parent->keys[idx - 1] = left->keys.back();
        left->keys.pop_back();
        left->children.pop_back();
      }
      left->latch.unlock();
      return child;
    }
    left->latch.unlock();
  }
  if (idx + 1 < static_cast<int>(parent->children.size())) {
    Node* right = parent->children[idx + 1];
    right->latch.lock();
    if (static_cast<int>(right->keys.size()) > min_keys_) {
      // Borrow from the right sibling.
      if (child->leaf) {
        child->keys.push_back(right->keys.front());
        child->values.push_back(right->values.front());
        right->keys.erase(right->keys.begin());
        right->values.erase(right->values.begin());
        parent->keys[idx] = right->keys.front();
      } else {
        child->keys.push_back(parent->keys[idx]);
        parent->keys[idx] = right->keys.front();
        child->children.push_back(right->children.front());
        right->keys.erase(right->keys.begin());
        right->children.erase(right->children.begin());
      }
      right->latch.unlock();
      return child;
    }
    // Merge the right sibling into the child.
    if (child->leaf) {
      child->keys.insert(child->keys.end(), right->keys.begin(),
                         right->keys.end());
      child->values.insert(child->values.end(), right->values.begin(),
                           right->values.end());
    } else {
      child->keys.push_back(parent->keys[idx]);
      child->keys.insert(child->keys.end(), right->keys.begin(),
                         right->keys.end());
      child->children.insert(child->children.end(), right->children.begin(),
                             right->children.end());
    }
    parent->keys.erase(parent->keys.begin() + idx);
    parent->children.erase(parent->children.begin() + idx + 1);
    right->latch.unlock();
    delete right;
    return child;
  }
  // No right sibling and the left one is minimal: merge child into left.
  Node* left = parent->children[idx - 1];
  left->latch.lock();
  if (child->leaf) {
    left->keys.insert(left->keys.end(), child->keys.begin(),
                      child->keys.end());
    left->values.insert(left->values.end(), child->values.begin(),
                        child->values.end());
  } else {
    left->keys.push_back(parent->keys[idx - 1]);
    left->keys.insert(left->keys.end(), child->keys.begin(),
                      child->keys.end());
    left->children.insert(left->children.end(), child->children.begin(),
                          child->children.end());
  }
  parent->keys.erase(parent->keys.begin() + idx - 1);
  parent->children.erase(parent->children.begin() + idx);
  child->latch.unlock();
  delete child;
  return left;
}

std::optional<int64_t> BTree::Erase(int64_t key) {
  std::unique_lock<std::shared_mutex> root_guard(root_latch_);
  Node* node = root_;
  node->latch.lock();
  // Hold the root guard while the root might still collapse during this
  // erase: only an internal root with a single key can lose it to a merge
  // of its two children.
  auto root_stable = [](const Node* n) {
    return n->leaf || n->keys.size() > 1;
  };
  if (root_stable(node)) root_guard.unlock();

  while (!node->leaf) {
    int idx = ChildIndex(node->keys, key);
    Node* child = node->children[idx];
    child->latch.lock();
    if (static_cast<int>(child->keys.size()) <= min_keys_) {
      child = FixChildForErase(node, idx);
    }
    if (root_guard.owns_lock() && node == root_ && node->keys.empty()) {
      // The root's two children merged; collapse the root.
      root_ = child;
      node->latch.unlock();
      delete node;
      node = child;
      if (root_stable(node)) root_guard.unlock();
      continue;
    }
    if (root_guard.owns_lock()) root_guard.unlock();
    node->latch.unlock();
    node = child;
  }
  if (root_guard.owns_lock()) root_guard.unlock();
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  std::optional<int64_t> old;
  if (it != node->keys.end() && *it == key) {
    size_t i = it - node->keys.begin();
    old = node->values[i];
    node->keys.erase(it);
    node->values.erase(node->values.begin() + i);
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
  // Linearization point (see Insert).
  StampApplyOrder();
  node->latch.unlock();
  return old;
}

int64_t BTree::Size() const { return size_.load(std::memory_order_relaxed); }

std::vector<std::pair<int64_t, int64_t>> BTree::Items() const {
  // Requires external quiescence (no concurrent mutators); used for
  // snapshots, equality tests and invariant checks only.
  std::unique_lock<std::shared_mutex> root_guard(root_latch_);
  std::vector<std::pair<int64_t, int64_t>> out;
  std::function<void(const Node*)> walk = [&](const Node* n) {
    if (n->leaf) {
      for (size_t i = 0; i < n->keys.size(); ++i) {
        out.emplace_back(n->keys[i], n->values[i]);
      }
      return;
    }
    for (const Node* c : n->children) walk(c);
  };
  walk(root_);
  return out;
}

int64_t BTree::RangeCount(int64_t lo, int64_t hi) const {
  int64_t n = 0;
  Range(lo, hi, [&n](int64_t, int64_t) { ++n; });
  return n;
}

std::vector<std::pair<int64_t, int64_t>> BTree::Range(int64_t lo,
                                                      int64_t hi) const {
  std::vector<std::pair<int64_t, int64_t>> out;
  Range(lo, hi, [&out](int64_t k, int64_t v) { out.emplace_back(k, v); });
  return out;
}

void BTree::Range(int64_t lo, int64_t hi,
                  const std::function<void(int64_t, int64_t)>& fn) const {
  if (lo >= hi) return;
  std::shared_lock<std::shared_mutex> root_guard(root_latch_);
  const Node* root = root_;
  root->latch.lock_shared();
  root_guard.unlock();
  // Recursive latch-coupled traversal: a node stays shared-latched while
  // its in-range children are visited (readers coexist; writers queue).
  std::function<void(const Node*)> walk = [&](const Node* n) {
    if (n->leaf) {
      auto it = std::lower_bound(n->keys.begin(), n->keys.end(), lo);
      for (; it != n->keys.end() && *it < hi; ++it) {
        fn(*it, n->values[it - n->keys.begin()]);
      }
      return;
    }
    int first = ChildIndex(n->keys, lo);
    int last = ChildIndex(n->keys, hi - 1);
    for (int i = first; i <= last; ++i) {
      const Node* c = n->children[i];
      c->latch.lock_shared();
      walk(c);
      c->latch.unlock_shared();
    }
  };
  walk(root);
  root->latch.unlock_shared();
}

int BTree::Height() const {
  std::shared_lock<std::shared_mutex> root_guard(root_latch_);
  int h = 1;
  const Node* n = root_;
  while (!n->leaf) {
    ++h;
    n = n->children[0];
  }
  return h;
}

std::string BTree::CheckInvariants() const {
  std::unique_lock<std::shared_mutex> root_guard(root_latch_);
  std::ostringstream err;
  int leaf_depth = -1;
  std::function<void(const Node*, int, std::optional<int64_t>,
                     std::optional<int64_t>, bool)>
      walk = [&](const Node* n, int depth, std::optional<int64_t> lo,
                 std::optional<int64_t> hi, bool is_root) {
        if (!std::is_sorted(n->keys.begin(), n->keys.end())) {
          err << "unsorted keys at depth " << depth << "; ";
        }
        for (int64_t k : n->keys) {
          if ((lo && k < *lo) || (hi && k >= *hi)) {
            err << "key " << k << " outside separator range; ";
          }
        }
        if (!is_root && static_cast<int>(n->keys.size()) < min_keys_) {
          err << "underfull node (" << n->keys.size() << " keys) at depth "
              << depth << "; ";
        }
        if (static_cast<int>(n->keys.size()) > order_) {
          err << "overfull node at depth " << depth << "; ";
        }
        if (n->leaf) {
          if (n->keys.size() != n->values.size()) {
            err << "leaf key/value count mismatch; ";
          }
          if (leaf_depth == -1) {
            leaf_depth = depth;
          } else if (leaf_depth != depth) {
            err << "leaves at different depths; ";
          }
          return;
        }
        if (n->children.size() != n->keys.size() + 1) {
          err << "internal child count mismatch; ";
        }
        for (size_t i = 0; i < n->children.size(); ++i) {
          std::optional<int64_t> clo = i == 0 ? lo : n->keys[i - 1];
          std::optional<int64_t> chi = i == n->keys.size() ? hi : n->keys[i];
          walk(n->children[i], depth + 1, clo, chi, false);
        }
      };
  walk(root_, 0, std::nullopt, std::nullopt, true);
  return err.str();
}

}  // namespace objectbase::adt
