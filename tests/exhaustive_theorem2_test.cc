// Exhaustive verification of Theorem 2 on small universes.
//
// For every interleaving of two (or three) straight-line transactions over
// one or two objects, build the history and check BOTH directions of the
// theory on it:
//   * if SG(h) is acyclic, the oracle must produce an equivalent serial
//     history (Theorem 2 — checked constructively, not just asserted);
//   * the oracle must never claim serialisability while the serial replay
//     diverges (its internal replay check guarantees this; here we also
//     track that cyclic-SG cases actually occur, so the sweep is not
//     vacuous).
//
// Unlike the randomized property tests, this enumerates the FULL
// interleaving space, so every boundary case of the conflict tables and
// graph construction in these universes is exercised.
#include <gtest/gtest.h>

#include <functional>

#include "src/adt/bank_account_adt.h"
#include "src/adt/counter_adt.h"
#include "src/adt/queue_adt.h"
#include "src/adt/register_adt.h"
#include "src/adt/set_adt.h"
#include "src/model/legality.h"
#include "src/model/serialiser.h"
#include "tests/history_builder.h"

namespace objectbase::model {
namespace {

// One transaction: a straight-line sequence of (object, op, args).
struct TxnScript {
  struct Op {
    int object;
    std::string op;
    Args args;
  };
  std::vector<Op> ops;
};

struct Universe {
  std::string name;
  std::vector<std::shared_ptr<const adt::AdtSpec>> objects;
  std::vector<TxnScript> txns;
};

// Builds the history for one interleaving (a sequence of txn indices, each
// appearing exactly txns[i].ops.size() times) and returns it.
History BuildInterleaving(const Universe& u,
                          const std::vector<int>& schedule) {
  HistoryBuilder b;
  std::vector<ObjectId> objs;
  for (size_t i = 0; i < u.objects.size(); ++i) {
    objs.push_back(b.AddObject("o" + std::to_string(i), u.objects[i]));
  }
  std::vector<ExecId> tops, bodies;
  for (size_t i = 0; i < u.txns.size(); ++i) {
    ExecId t = b.Top("T" + std::to_string(i));
    tops.push_back(t);
    // One child method execution per transaction holding all local steps
    // (the minimal nested shape).  The child needs an owning object; use
    // the first object its script touches.
    int first_obj = u.txns[i].ops.empty() ? 0 : u.txns[i].ops[0].object;
    bodies.push_back(b.Child(t, objs[first_obj], "body"));
  }
  std::vector<size_t> position(u.txns.size(), 0);
  for (int t : schedule) {
    const TxnScript::Op& op = u.txns[t].ops[position[t]++];
    b.Local(bodies[t], objs[op.object], op.op, op.args);
  }
  return b.Build();
}

// Enumerates all interleavings of the universe's transactions, applying fn.
void ForAllInterleavings(const Universe& u,
                         const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<size_t> remaining;
  size_t total = 0;
  for (const TxnScript& t : u.txns) {
    remaining.push_back(t.ops.size());
    total += t.ops.size();
  }
  std::vector<int> schedule;
  std::function<void()> rec = [&]() {
    if (schedule.size() == total) {
      fn(schedule);
      return;
    }
    for (size_t t = 0; t < remaining.size(); ++t) {
      if (remaining[t] == 0) continue;
      remaining[t]--;
      schedule.push_back(static_cast<int>(t));
      rec();
      schedule.pop_back();
      remaining[t]++;
    }
  };
  rec();
}

// Runs the exhaustive check over a universe; returns (total, cyclic).
std::pair<int, int> CheckUniverse(const Universe& u) {
  int total = 0, cyclic = 0;
  ForAllInterleavings(u, [&](const std::vector<int>& schedule) {
    ++total;
    History h = BuildInterleaving(u, schedule);
    // Every built history is legal by construction (returns recorded from
    // live replay) — validate anyway.
    LegalityResult legal = CheckLegal(h);
    ASSERT_TRUE(legal.legal) << u.name << ": " << legal.error;
    Digraph sg = BuildSerialisationGraph(h);
    SerialisabilityCheck check = CheckSerialisable(h);
    if (sg.IsAcyclic()) {
      // Theorem 2: acyclic SG => an equivalent serial history exists; the
      // oracle constructs and replays it.
      EXPECT_TRUE(check.serialisable)
          << u.name << " schedule failed Theorem 2: " << check.detail;
    } else {
      ++cyclic;
      EXPECT_FALSE(check.serialisable)
          << u.name << ": oracle accepted a cyclic SG";
    }
  });
  return {total, cyclic};
}

TEST(ExhaustiveTheorem2Test, TwoRegisterWriters) {
  // The Section 2 shape: two txns writing A then B in opposite orders.
  Universe u;
  u.name = "two-register-writers";
  u.objects = {adt::MakeRegisterSpec(0), adt::MakeRegisterSpec(0)};
  u.txns = {
      {{{0, "write", {1}}, {1, "write", {1}}}},
      {{{1, "write", {2}}, {0, "write", {2}}}},
  };
  auto [total, cyclic] = CheckUniverse(u);
  EXPECT_EQ(total, 6);  // C(4,2) interleavings
  EXPECT_GT(cyclic, 0);  // the crossing interleavings are non-serialisable
  EXPECT_LT(cyclic, total);
}

TEST(ExhaustiveTheorem2Test, ReadersAndWriters) {
  Universe u;
  u.name = "readers-writers";
  u.objects = {adt::MakeRegisterSpec(0)};
  u.txns = {
      {{{0, "write", {1}}, {0, "read", {}}}},
      {{{0, "read", {}}, {0, "write", {2}}}},
  };
  auto [total, cyclic] = CheckUniverse(u);
  EXPECT_EQ(total, 6);
  EXPECT_GT(cyclic, 0);
}

TEST(ExhaustiveTheorem2Test, CommutingCountersNeverCyclic) {
  Universe u;
  u.name = "commuting-counters";
  u.objects = {adt::MakeCounterSpec(0)};
  u.txns = {
      {{{0, "add", {1}}, {0, "add", {2}}}},
      {{{0, "add", {3}}, {0, "add", {4}}}},
  };
  auto [total, cyclic] = CheckUniverse(u);
  EXPECT_EQ(total, 6);
  EXPECT_EQ(cyclic, 0);  // adds commute: every interleaving serialisable
}

TEST(ExhaustiveTheorem2Test, BankAccountAsymmetry) {
  // deposits and successful withdrawals: the asymmetric table means some
  // orders create edges and others do not; every interleaving must still
  // satisfy Theorem 2.
  Universe u;
  u.name = "bank-asymmetry";
  u.objects = {adt::MakeBankAccountSpec(100)};
  u.txns = {
      {{{0, "withdraw", {10}}, {0, "balance", {}}}},
      {{{0, "deposit", {5}}, {0, "withdraw", {200}}}},  // 2nd may fail
  };
  auto [total, cyclic] = CheckUniverse(u);
  EXPECT_EQ(total, 6);
  EXPECT_GT(cyclic, 0);  // balance-vs-deposit crossings
}

TEST(ExhaustiveTheorem2Test, QueueReturnValues) {
  Universe u;
  u.name = "queue-return-values";
  u.objects = {adt::MakeQueueSpec()};
  u.txns = {
      {{{0, "enqueue", {1}}, {0, "dequeue", {}}}},
      {{{0, "enqueue", {2}}, {0, "dequeue", {}}}},
  };
  auto [total, cyclic] = CheckUniverse(u);
  EXPECT_EQ(total, 6);
  // Some interleavings cross-deliver items (T1 dequeues T2's element and
  // vice versa) — those are the cyclic ones.
  EXPECT_GT(cyclic, 0);
}

TEST(ExhaustiveTheorem2Test, ThreeTransactionsOnSharedSet) {
  Universe u;
  u.name = "three-on-set";
  u.objects = {adt::MakeSetSpec()};
  u.txns = {
      {{{0, "insert", {1}}, {0, "contains", {2}}}},
      {{{0, "insert", {2}}, {0, "erase", {1}}}},
      {{{0, "contains", {1}}}},
  };
  auto [total, cyclic] = CheckUniverse(u);
  EXPECT_EQ(total, 30);  // 5! / (2! 2! 1!)
  EXPECT_GT(cyclic, 0);
  EXPECT_LT(cyclic, total);
}

TEST(ExhaustiveTheorem2Test, TwoObjectsThreeTransactions) {
  Universe u;
  u.name = "two-objects-three-txns";
  u.objects = {adt::MakeRegisterSpec(0), adt::MakeCounterSpec(0)};
  u.txns = {
      {{{0, "write", {1}}, {1, "add", {1}}}},
      {{{1, "get", {}}, {0, "read", {}}}},
      {{{0, "increment", {1}}}},
  };
  auto [total, cyclic] = CheckUniverse(u);
  EXPECT_EQ(total, 30);
  EXPECT_GT(cyclic, 0);
  EXPECT_LT(cyclic, total);
}

}  // namespace
}  // namespace objectbase::model
