// Concurrent B-tree tests: the latch-crabbing protocol under real threads.
// These validate the Section 2 premise that a dictionary object can run a
// special-purpose internal synchronisation algorithm safely.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/adt/btree.h"
#include "src/common/rng.h"

namespace objectbase::adt {
namespace {

TEST(BTreeConcurrentTest, ParallelDisjointInserts) {
  BTree tree(8);
  const int threads = 8, per_thread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&tree, t]() {
      for (int i = 0; i < per_thread; ++i) {
        int64_t key = static_cast<int64_t>(t) * per_thread + i;
        tree.Insert(key, key * 3);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tree.Size(), threads * per_thread);
  EXPECT_EQ(tree.CheckInvariants(), "");
  for (int64_t key = 0; key < threads * per_thread; ++key) {
    ASSERT_EQ(tree.Lookup(key), std::make_optional<int64_t>(key * 3));
  }
}

TEST(BTreeConcurrentTest, ReadersDuringWrites) {
  BTree tree(8);
  for (int64_t i = 0; i < 1000; i += 2) tree.Insert(i, i);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&]() {
      Rng rng(1000 + r);
      while (!stop.load()) {
        int64_t key = rng.Range(0, 999);
        auto v = tree.Lookup(key);
        // Even keys present from the start must always be found with their
        // original value (writers only touch odd keys).
        if (key % 2 == 0) {
          ASSERT_EQ(v, std::make_optional(key));
        }
        reads.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w]() {
      Rng rng(2000 + w);
      for (int i = 0; i < 5000; ++i) {
        int64_t key = rng.Range(0, 499) * 2 + 1;  // odd keys only
        if (rng.Bernoulli(0.5)) {
          tree.Insert(key, key);
        } else {
          tree.Erase(key);
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(tree.CheckInvariants(), "");
}

TEST(BTreeConcurrentTest, MixedChurnKeepsInvariants) {
  BTree tree(6);
  const int threads = 6;
  std::vector<std::thread> workers;
  std::vector<std::atomic<int64_t>> net_inserts(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(3000 + t);
      int64_t net = 0;
      for (int i = 0; i < 4000; ++i) {
        // Each thread owns a key stripe so it can track its own net count.
        int64_t key = rng.Range(0, 799) * threads + t;
        if (rng.Bernoulli(0.6)) {
          if (!tree.Insert(key, key).has_value()) ++net;
        } else {
          if (tree.Erase(key).has_value()) --net;
        }
      }
      net_inserts[t].store(net);
    });
  }
  for (auto& w : workers) w.join();
  int64_t expected = 0;
  for (int t = 0; t < threads; ++t) expected += net_inserts[t].load();
  EXPECT_EQ(tree.Size(), expected);
  EXPECT_EQ(tree.CheckInvariants(), "");
  EXPECT_EQ(static_cast<int64_t>(tree.Items().size()), expected);
}

TEST(BTreeConcurrentTest, ContendedSameKeys) {
  // All threads fight over a tiny keyspace: exercises merge/split churn at
  // the root and the root-collapse path.
  BTree tree(3);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(4000 + t);
      for (int i = 0; i < 3000; ++i) {
        int64_t key = rng.Range(0, 7);
        switch (rng.Uniform(3)) {
          case 0: tree.Insert(key, t); break;
          case 1: tree.Erase(key); break;
          default: tree.Lookup(key); break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tree.CheckInvariants(), "");
  EXPECT_LE(tree.Size(), 8);
}

}  // namespace
}  // namespace objectbase::adt
