file(REMOVE_RECURSE
  "CMakeFiles/example_queue_pipeline.dir/examples/queue_pipeline.cpp.o"
  "CMakeFiles/example_queue_pipeline.dir/examples/queue_pipeline.cpp.o.d"
  "example_queue_pipeline"
  "example_queue_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_queue_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
