// Thread-level waits-for deadlock detection for blocking protocols.
//
// N2PL (and the Gemstone baseline) block lock requesters.  Because method
// executions nest and locks are inherited upwards (rule 5), the entity that
// eventually releases a lock held by execution h is the set of threads
// currently running h or a descendent of h.  Deadlock therefore lives at
// thread granularity: the requesting thread t is deadlocked iff following
//   t -> (executions blocking t) -> (threads serving those executions)
// leads back to t through blocked threads only.  Note that a sibling
// blocking a sibling inside one top-level transaction is NOT a deadlock by
// itself: the sibling commits, its locks pass to the common parent (an
// ancestor of the waiter), and rule 2 then grants the request.
//
// The running-execution registry sits on the hot path (every method
// invocation updates it).  Thread keys are DENSE pooled slot ids
// (ThisThreadKey in lock_manager.h), so both registries are flat vectors
// indexed by key: after a thread's first registration, an update is a
// shared-lock (growth guard only) plus an atomic store — no map traversal.
// The waiting registry is only touched when a request actually blocks.
#ifndef OBJECTBASE_CC_WAITS_FOR_H_
#define OBJECTBASE_CC_WAITS_FOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace objectbase::rt {
class TxnNode;
}  // namespace objectbase::rt

namespace objectbase::cc {

/// Tracks, per thread, the innermost running execution and (while blocked)
/// the set of execution uids being waited for.  Thread-safe.
class WaitsForGraph {
 public:
  /// Registers/updates the innermost execution run by `thread_key`.  The
  /// node must outlive its registration.
  void SetRunning(uint64_t thread_key, rt::TxnNode* node);
  /// Clears the thread's current execution (finished) — outer frames
  /// re-register via SetRunning.
  void ClearRunning(uint64_t thread_key);

  /// Declares that `thread_key` is about to block waiting for the given
  /// holder executions (must be non-empty).  Returns true if blocking would
  /// close a cycle of blocked threads (deadlock); in that case the wait is
  /// NOT registered.  When `cycle_has_wounded` is non-null and a cycle is
  /// found, it is set to whether any thread examined by the cycle walk is
  /// running (inside) a wound victim — checked under the graph's mutexes,
  /// where the running-slot pointers are safe to inspect.  Wound–wait uses
  /// this to classify the cycle as transient (a victim is mid-unwind and
  /// its release will recompute the caller's blockers) versus persistent
  /// (no wound can break it: composite lock/commit-wait cycles).
  bool SetWaitingWouldDeadlock(uint64_t thread_key,
                               const std::vector<uint64_t>& holder_uids,
                               bool* cycle_has_wounded = nullptr);

  /// Clears the waiting state of `thread_key` (lock granted or aborted).
  void ClearWaiting(uint64_t thread_key);

  /// Number of currently blocked threads (for stats/tests).
  size_t BlockedCount() const;

 private:
  std::atomic<rt::TxnNode*>& SlotFor(uint64_t thread_key);
  // Threads currently running a descendant-or-self of `exec_uid`.
  // Requires running_mu_ held (shared suffices).
  std::vector<uint64_t> ServingThreadsLocked(uint64_t exec_uid) const;
  // Requires wait_mu_ and running_mu_ (shared) held.
  bool CycleBackToLocked(uint64_t start_thread, uint64_t from_thread,
                         std::vector<uint64_t>& visited) const;

  mutable std::shared_mutex running_mu_;  // guards growth only
  // Dense by pooled thread key; deque so growth never moves the atomics.
  mutable std::deque<std::atomic<rt::TxnNode*>> running_;
  mutable std::mutex wait_mu_;
  // Dense by pooled thread key; an empty holder list means "not blocked"
  // (a registered wait always names at least one holder).
  std::vector<std::vector<uint64_t>> waiting_;
};

}  // namespace objectbase::cc

#endif  // OBJECTBASE_CC_WAITS_FOR_H_
