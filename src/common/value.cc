#include "src/common/value.h"

namespace objectbase {

std::string Value::ToString() const {
  if (is_none()) return "none";
  if (is_int()) return std::to_string(AsInt());
  if (is_bool()) return AsBool() ? "true" : "false";
  return "\"" + AsString() + "\"";
}

std::string ArgsToString(const Args& args) {
  std::string out = "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace objectbase
