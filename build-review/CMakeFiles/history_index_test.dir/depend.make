# Empty dependencies file for history_index_test.
# This may be replaced when dependencies are built.
