#include "src/cc/nto_controller.h"

#include <algorithm>

#include "src/runtime/apply.h"
#include "src/runtime/journal.h"
#include "src/runtime/wal.h"

namespace objectbase::cc {

NtoController::NtoController(rt::Recorder& recorder, Granularity granularity,
                             bool gc_enabled, size_t fold_threshold)
    : recorder_(recorder),
      granularity_(granularity),
      gc_enabled_(gc_enabled && fold_threshold != 0),
      fold_threshold_(fold_threshold) {}

void NtoController::OnTopBegin(rt::TxnNode& top) {
  // Cache the packed slot handle on the node: every per-step doom poll and
  // recorded journal entry addresses the registry slot directly.  (Under a
  // sharded topology the handle lands in this shard's slot of the node's
  // handle array — see Controller::BindShardSlot.)
  SetDepHandle(top, deps_.Register(top.uid(), top.hts().top_component()).raw());
}

namespace {

// Retires remembered steps that can no longer matter: every active
// transaction's timestamp exceeds theirs, so rule 1 can never compare
// against them again (the active-watermark mechanism of Section 5.2).
// Folding keeps the journal a suffix of the object's history, which the
// rebuild-based rollback relies on.  Caller must hold no object locks.
void MaybeGc(rt::Object& obj, DependencyGraph& deps, size_t threshold) {
  // Lock-free cadence poll (AppliedJournal::WantsFold is two relaxed
  // loads); the fold itself re-checks under the apply serialisation.
  // MinActiveCounter is a lock-free slot scan, so the whole GC probe
  // costs the step path no mutex when it does not fire.
  if (!obj.journal().WantsFold(threshold)) return;
  obj.FoldPrefix(deps.MinActiveCounter(), threshold);
}

}  // namespace

OpOutcome NtoController::ExecuteLocal(rt::TxnNode& txn, rt::Object& obj,
                                      const adt::OpDescriptor& op,
                                      const Args& args) {
  const DepRef my_ref = DepRef::FromRaw(DepHandleOf(*txn.top()));
  // One relaxed atomic load — the conflict-free step path takes no
  // DependencyGraph mutex at all (doom is monotonic, so a stale false
  // only delays the abort by one step).
  if (deps_.IsDoomed(my_ref)) {
    return OpOutcome::Abort(AbortReason::kDoomed);
  }
  if (gc_enabled_) MaybeGc(obj, deps_, fold_threshold_);

  const std::vector<uint64_t>& chain = txn.AncestorChain();
  const Hts& my_hts = txn.hts();
  const uint64_t my_top = txn.top()->uid();
  const std::vector<adt::OpId>& row = obj.ConflictRowFor(op.id);

  // NTO always applies under the exclusive latch, so the journal's per-op
  // conflict indices are complete here (journal.h) and scan-then-append is
  // atomic with respect to every other appender.
  std::lock_guard<std::shared_mutex> state_guard(obj.state_mu());

  if (granularity_ == Granularity::kOperation) {
    // Conservative test against remembered operation classes before
    // executing (Section 5.2's first implementation).  Lock-free scan.
    bool ts_reject = false;
    bool doomed = false;
    bool saw_conflict = false;
    {
      rt::AppliedJournal::Scan scan(obj.journal());
      uint64_t last_dep = 0;  // consecutive same-writer entries: one edge
      scan.ForEachConflicting(
          row, scan.end_pos(), /*exclusive=*/true,
          [&](const rt::AppliedJournal::Entry& e) {
            if (e.IsAborted()) return true;
            if (!e.IncomparableWith(chain)) return true;  // rule 1: kin
            if (*e.hts > my_hts) {
              saw_conflict = true;
              ts_reject = true;
              return false;
            }
            if (e.top_uid != my_top && e.dep != last_dep) {
              last_dep = e.dep;
              // Telemetry: only edges on LIVE rivals count as contention —
              // settled history conflicts with every later scan by design.
              if (deps_.IsUnfinished(DepRef::FromRaw(e.dep))) {
                saw_conflict = true;
              }
              deps_.AddDependency(DepRef::FromRaw(e.dep), my_ref);
              // Abort-marking/edge-recording recheck (docs/journal.md): if
              // the writer aborted while we raced here, its slot may have
              // retired before our edge landed — the marking is visible by
              // now, so observing it closes the cascade window.
              if (e.IsAborted()) {
                saw_conflict = true;
                doomed = true;
                return false;
              }
            }
            return true;
          });
    }
    if (saw_conflict) {
      // Telemetry only, relaxed, nothing on the conflict-free path.
      obj.contention().journal_conflicts.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    if (ts_reject) return OpOutcome::Abort(AbortReason::kTimestampOrder);
    if (doomed) return OpOutcome::Abort(AbortReason::kDoomed);
    rt::AppliedOutcome out = rt::ApplyLocked(txn, obj, op, args, recorder_,
                                             /*append_applied_log=*/true,
                                             wal_, my_ref.raw());
    return OpOutcome::Ok(std::move(out.ret));
  }

  // Step granularity: provisional execution first (atomic w.r.t. the
  // object's other local operations — we hold state_mu), then the conflict
  // test sees the actual return value.
  adt::ApplyResult provisional = op.apply(obj.state(), args);
  bool ts_reject = false;
  bool doomed = false;
  bool saw_conflict = false;
  {
    rt::AppliedJournal::Scan scan(obj.journal());
    uint64_t last_dep = 0;  // consecutive same-writer entries: one edge
    scan.ForEachConflicting(
        row, scan.end_pos(), /*exclusive=*/true,
        [&](const rt::AppliedJournal::Entry& e) {
          if (e.IsAborted()) return true;
          if (!e.IncomparableWith(chain)) return true;
          adt::StepView first{obj.spec().OpAt(e.op_id).name, &e.args, &e.ret,
                              e.op_id};
          adt::StepView second{op.name, &args, &provisional.ret, op.id};
          if (!obj.spec().StepConflicts(first, second)) return true;
          if (*e.hts > my_hts) {
            saw_conflict = true;
            ts_reject = true;
            return false;
          }
          if (e.top_uid != my_top && e.dep != last_dep) {
            last_dep = e.dep;
            // Live rivals only — see the operation-mode scan.
            if (deps_.IsUnfinished(DepRef::FromRaw(e.dep))) {
              saw_conflict = true;
            }
            deps_.AddDependency(DepRef::FromRaw(e.dep), my_ref);
            if (e.IsAborted()) {  // recheck, see above
              saw_conflict = true;
              doomed = true;
              return false;
            }
          }
          return true;
        });
  }
  if (saw_conflict) {
    // Telemetry only, relaxed, nothing on the conflict-free path.
    obj.contention().journal_conflicts.fetch_add(1, std::memory_order_relaxed);
  }
  if (ts_reject || doomed) {
    if (provisional.undo) provisional.undo(obj.state());
    return OpOutcome::Abort(ts_reject ? AbortReason::kTimestampOrder
                                      : AbortReason::kDoomed);
  }
  // Accept the provisional step as real.  The journal position — reserved
  // under this exclusive latch — is the per-object application order key
  // (undo ordering and the recorder's per-object merge); the raw recorder
  // stamp is a leased draw, no global RMW.
  const uint64_t raw = recorder_.NextSeq();
  const uint64_t pos = obj.journal().Reserve();
  txn.PushUndo(rt::UndoRecord{pos, &obj, std::move(provisional.undo)});
  recorder_.RecordLocalStep(txn.exec_id, txn.NextPo(), obj.id(), op.id, args,
                            provisional.ret, pos, raw);
  rt::JournalRecord entry;
  entry.seq = raw;
  entry.exec_uid = txn.uid();
  entry.top_uid = my_top;
  entry.dep = my_ref.raw();
  entry.chain = txn.ChainPtr();
  entry.hts = txn.HtsSnapshot();
  entry.op_id = op.id;
  entry.args = args;
  entry.ret = provisional.ret;
  obj.journal().PublishAt(pos, std::move(entry));
  if (wal_ != nullptr) {
    // Accepted step: stage the redo under the same exclusive latch, keyed
    // by the journal position (the per-object application order).
    wal_->StageRedo(obj.id(), pos, my_top, txn.uid(), txn.ChainPtr(), op.id,
                    args, provisional.ret);
  }
  return OpOutcome::Ok(std::move(provisional.ret));
}

void NtoController::OnChildCommit(rt::TxnNode&) {}

bool NtoController::OnTopCommit(rt::TxnNode& top, AbortReason* reason) {
  const DepRef ref = DepRef::FromRaw(DepHandleOf(top));
  if (!deps_.ValidateAndWait(ref, reason)) return false;
  if (wal_ == nullptr) {
    deps_.MarkCommitted(ref);
    return true;
  }
  // Watermark soundness: stage the commit marker BEFORE MarkCommitted.  A
  // dependency successor passes its own ValidateAndWait only after our
  // MarkCommitted, so its marker always lands later in the log — the
  // prefix-closed durable watermark then guarantees an acknowledged
  // successor's predecessors are durable too.  Waiting AFTER MarkCommitted
  // overlaps our fsync with successors' validation (group commit).
  const uint64_t pos = wal_->StageCommit(top.uid());
  deps_.MarkCommitted(ref);
  wal_->WaitDurable(pos);
  return true;
}

namespace {

void CollectObjects(rt::TxnNode& node, std::vector<rt::Object*>& out) {
  for (const rt::UndoRecord& u : node.undo_log()) {
    if (std::find(out.begin(), out.end(), u.object) == out.end()) {
      out.push_back(u.object);
    }
  }
  for (auto& child : node.children()) CollectObjects(*child, out);
}

}  // namespace

void NtoController::OnAbort(rt::TxnNode& node) {
  // Mark the subtree's journal entries aborted and rebuild each touched
  // object's state from its base (see the recovery note in the header).
  // Marking precedes MarkAborted, which the lock-free scans' recheck
  // protocol relies on; the rebuild front-runs the doom cascade and
  // excludes doomed transactions' entries (rebuild soundness — see
  // Object::AbortEntriesAndRebuild and docs/journal.md).
  std::vector<rt::Object*> touched;
  CollectObjects(node, touched);
  const DepRef top_ref = DepRef::FromRaw(DepHandleOf(*node.top()));
  for (rt::Object* obj : touched) {
    obj->AbortEntriesAndRebuild(
        node.uid(), [&] { deps_.DoomSuccessorsTransitively(top_ref); },
        [&](uint64_t dep_raw) {
          return deps_.IsDoomed(DepRef::FromRaw(dep_raw));
        });
  }
  if (node.parent() == nullptr) {
    deps_.MarkAborted(DepRef::FromRaw(DepHandleOf(node)));
  }
}

void NtoController::OnTopFinished(rt::TxnNode&) {
  // Nothing to do: settled registry slots retire incrementally inside
  // MarkCommitted/MarkAborted (the old every-32-finishes Prune() cadence —
  // and its racy fetch_add gating — is gone).
}

size_t NtoController::RememberedEntries(
    const std::vector<rt::Object*>& objects) {
  size_t n = 0;
  for (rt::Object* o : objects) n += o->applied_log_size();
  return n;
}

}  // namespace objectbase::cc
