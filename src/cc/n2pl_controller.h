// Nested two-phase locking (Moss' algorithm, Argus variant) — Section 5.1.
//
// Two conflict-testing granularities (the paper's two "implementation
// considerations"):
//   * kOperation — locks are associated with operation classes; an
//     execution acquires L(a) before issuing operation a.  Conservative:
//     Enqueue blocks every Dequeue.
//   * kStep — the provisional-execution scheme: the operation is executed
//     provisionally (atomically with respect to the object's other local
//     operations), its return value observed, and the lock for the actual
//     STEP acquired; if the lock cannot be granted the provisional effect
//     is undone and the operation retried later.  Exploits return values
//     (after Weihl): an Enqueue only delays the Dequeue that returns its
//     item.
//
// Deadlocks are possible (locking); detected on the waits-for graph with
// the requester as victim.  Child aborts are local: strict lock retention
// guarantees no incomparable execution observed the aborted child's
// effects, so the parent may survive and try an alternative (Section 3).
#ifndef OBJECTBASE_CC_N2PL_CONTROLLER_H_
#define OBJECTBASE_CC_N2PL_CONTROLLER_H_

#include "src/adt/adt.h"
#include "src/cc/controller.h"
#include "src/cc/lock_manager.h"

namespace objectbase::rt {
class Recorder;
}  // namespace objectbase::rt

namespace objectbase::cc {

class N2plController : public Controller {
 public:
  N2plController(rt::Recorder& recorder, Granularity granularity);

  const char* name() const override { return "N2PL"; }

  void OnTopBegin(rt::TxnNode& top) override;
  OpOutcome ExecuteLocal(rt::TxnNode& txn, rt::Object& obj,
                         const adt::OpDescriptor& op,
                         const Args& args) override;
  void OnChildCommit(rt::TxnNode& child) override;
  bool OnTopCommit(rt::TxnNode& top, AbortReason* reason) override;
  void OnAbort(rt::TxnNode& node) override;
  void OnTopFinished(rt::TxnNode& top) override;

  /// N2PL tolerates child aborts without dooming the top (see header).
  bool SupportsPartialAbort() const override { return true; }

  LockManager& lock_manager() { return locks_; }

 private:
  OpOutcome ExecuteOperationMode(rt::TxnNode& txn, rt::Object& obj,
                                 const adt::OpDescriptor& op,
                                 const Args& args);
  OpOutcome ExecuteStepMode(rt::TxnNode& txn, rt::Object& obj,
                            const adt::OpDescriptor& op, const Args& args);

  rt::Recorder& recorder_;
  Granularity granularity_;
  LockManager locks_;
};

}  // namespace objectbase::cc

#endif  // OBJECTBASE_CC_N2PL_CONTROLLER_H_
