file(REMOVE_RECURSE
  "CMakeFiles/waits_for_test.dir/tests/waits_for_test.cc.o"
  "CMakeFiles/waits_for_test.dir/tests/waits_for_test.cc.o.d"
  "waits_for_test"
  "waits_for_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waits_for_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
