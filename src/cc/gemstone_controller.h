// The Gemstone-style baseline: the Section 1 conservative reduction.
//
// "First, we shall view each object as a data item.  We shall treat a
// method invocation as a group of read or write operations on those data
// items ... Furthermore, we shall require that only one method execution
// can be active at each object at any one time.  With these restrictions,
// any conventional database concurrency control method ... can be
// employed.  This approach ... is, for example, the approach taken in the
// Gemstone project and product."
//
// Realisation: each top-level transaction takes a whole-object lock (held,
// strict-2PL style, until top-level completion) before touching an object —
// SHARED for a read-only operation, EXCLUSIVE otherwise, exactly the
// read/write item locks a conventional database 2PL scheduler would take
// under the reduction.  A transaction that read an object and later writes
// it upgrades shared -> exclusive (waiting out the other shared holders;
// mutual upgrades deadlock and one side is the victim).  Applications are
// serialised per object, so at most one method execution mutates an object
// at any time.  Deadlocks are detected on the waits-for graph.  This is
// the baseline every experiment compares against (E1, E6) — shared read
// locks keep it honest on read-heavy mixes (`shared_reads=false` restores
// the old exclusive-only behaviour for the E1d ablation).
#ifndef OBJECTBASE_CC_GEMSTONE_CONTROLLER_H_
#define OBJECTBASE_CC_GEMSTONE_CONTROLLER_H_

#include "src/cc/controller.h"
#include "src/cc/lock_manager.h"

namespace objectbase::rt {
class Recorder;
}  // namespace objectbase::rt

namespace objectbase::cc {

class GemstoneController : public Controller {
 public:
  explicit GemstoneController(rt::Recorder& recorder, bool shared_reads = true);

  const char* name() const override { return "GEMSTONE"; }

  void OnTopBegin(rt::TxnNode& top) override;
  OpOutcome ExecuteLocal(rt::TxnNode& txn, rt::Object& obj,
                         const adt::OpDescriptor& op,
                         const Args& args) override;
  void OnChildCommit(rt::TxnNode& child) override;
  bool OnTopCommit(rt::TxnNode& top, AbortReason* reason) override;
  void OnAbort(rt::TxnNode& node) override;
  void OnTopFinished(rt::TxnNode& top) override;

  /// Whole-object exclusive locks make intra-top visibility of an aborted
  /// sibling's effects possible (siblings never block each other), so child
  /// aborts escalate to the top like the optimistic protocols.
  bool SupportsPartialAbort() const override { return false; }

  LockManager& lock_manager() { return locks_; }

 private:
  rt::Recorder& recorder_;
  const bool shared_reads_;  // read-only ops take shared whole-object locks
  LockManager locks_;
};

}  // namespace objectbase::cc

#endif  // OBJECTBASE_CC_GEMSTONE_CONTROLLER_H_
