# Empty dependencies file for btree_concurrent_test.
# This may be replaced when dependencies are built.
