# Empty dependencies file for adt_commutativity_test.
# This may be replaced when dependencies are built.
