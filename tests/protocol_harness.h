// Shared harness for the protocol correctness tests.
//
// Each scenario runs a genuinely contended multi-threaded workload under a
// given protocol with history recording on, then checks the recorded
// history against the paper's machinery:
//   * CheckLegal on the committed projection (Definition 6 + Section 3(a));
//   * CheckSerialisable — SG(h) acyclic (Theorem 2) AND replay-equivalence
//     to the constructed serial history (Definition 7);
//   * CheckTheorem5 — the intra-/inter-object conditions;
// plus scenario-specific semantic invariants (conservation of money, no
// lost counter increments, queue items neither lost nor duplicated).
#ifndef OBJECTBASE_TESTS_PROTOCOL_HARNESS_H_
#define OBJECTBASE_TESTS_PROTOCOL_HARNESS_H_

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/adt/bank_account_adt.h"
#include "src/adt/counter_adt.h"
#include "src/adt/queue_adt.h"
#include "src/adt/register_adt.h"
#include "src/adt/set_adt.h"
#include "src/common/rng.h"
#include "src/model/legality.h"
#include "src/model/local_graphs.h"
#include "src/model/serialiser.h"
#include "src/runtime/executor.h"

namespace objectbase::rt {

inline void VerifyHistory(Executor& exec, const char* context) {
  model::History h = exec.recorder().Snapshot();
  model::LegalityResult legal = model::CheckLegal(h, /*committed_only=*/true);
  EXPECT_TRUE(legal.legal) << context << ": " << legal.error;
  model::SerialisabilityCheck check = model::CheckSerialisable(h);
  EXPECT_TRUE(check.serialisable) << context << ": " << check.detail;
  model::Theorem5Result t5 = model::CheckTheorem5(h);
  EXPECT_TRUE(t5.holds) << context << ": " << t5.detail;
}

/// Banking: `threads` workers transfer random amounts between `accounts`
/// hot accounts.  Verifies conservation of money and the formal oracle.
inline void RunBankingScenario(Protocol protocol, cc::Granularity granularity,
                               int threads, int txns_per_thread,
                               int accounts, uint64_t seed,
                               bool parallel_deposit = false) {
  ObjectBase base;
  const int64_t initial = 1000;
  for (int i = 0; i < accounts; ++i) {
    base.CreateObject("acct:" + std::to_string(i),
                      adt::MakeBankAccountSpec(initial));
  }
  Executor exec(base,
                {.protocol = protocol, .granularity = granularity});
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(seed + t * 7919);
      for (int i = 0; i < txns_per_thread; ++i) {
        int from = static_cast<int>(rng.Uniform(accounts));
        int to = static_cast<int>(rng.Uniform(accounts));
        if (to == from) to = (to + 1) % accounts;
        int64_t amount = rng.Range(1, 50);
        std::string from_name = "acct:" + std::to_string(from);
        std::string to_name = "acct:" + std::to_string(to);
        exec.RunTransaction("transfer", [&, amount](MethodCtx& txn) -> Value {
          Value ok = txn.Invoke(from_name, "withdraw", {amount});
          if (!ok.AsBool()) return Value(false);
          if (parallel_deposit) {
            auto outcomes =
                txn.InvokeParallel({{to_name, "deposit", {amount}}});
            // Under partial-abort protocols (N2PL/CERT) a failed parallel
            // branch is reported, not propagated; conservation needs the
            // withdraw/deposit pair to be all-or-nothing, so abort (the
            // top-level retry loop re-runs the transfer).
            if (!outcomes[0].ok) txn.Abort();
          } else {
            txn.Invoke(to_name, "deposit", {amount});
          }
          return Value(true);
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  // Conservation of money: withdraw/deposit pairs are atomic.
  int64_t total = 0;
  exec.RunTransaction("audit", [&](MethodCtx& txn) {
    for (int i = 0; i < accounts; ++i) {
      total += txn.Invoke("acct:" + std::to_string(i), "balance").AsInt();
    }
    return Value();
  });
  EXPECT_EQ(total, initial * accounts)
      << ProtocolName(protocol) << " lost or created money";
  EXPECT_GT(exec.stats().committed.load(), 0u);
  VerifyHistory(exec, ProtocolName(protocol));
}

/// Counters: concurrent semantic adds; the final value must equal the sum
/// of committed deltas exactly.
inline void RunCounterScenario(Protocol protocol, cc::Granularity granularity,
                               int threads, int txns_per_thread,
                               uint64_t seed) {
  ObjectBase base;
  base.CreateObject("hot", adt::MakeCounterSpec(0));
  Executor exec(base,
                {.protocol = protocol, .granularity = granularity});
  std::vector<int64_t> committed_sum(threads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(seed + t);
      int64_t sum = 0;
      for (int i = 0; i < txns_per_thread; ++i) {
        int64_t d = rng.Range(1, 9);
        TxnResult r = exec.RunTransaction("bump", [d](MethodCtx& txn) {
          txn.Invoke("hot", "add", {d});
          return Value();
        });
        if (r.committed) sum += d;
      }
      committed_sum[t] = sum;
    });
  }
  for (auto& w : workers) w.join();
  int64_t expected = 0;
  for (int64_t s : committed_sum) expected += s;
  TxnResult check = exec.RunTransaction("check", [](MethodCtx& txn) {
    return txn.Invoke("hot", "get");
  });
  EXPECT_EQ(check.ret, Value(expected))
      << ProtocolName(protocol) << " lost increments";
  VerifyHistory(exec, ProtocolName(protocol));
}

/// Queues: producers enqueue unique tags, consumers drain.  Items must be
/// neither lost nor duplicated across committed transactions.
inline void RunQueueScenario(Protocol protocol, cc::Granularity granularity,
                             int threads, int txns_per_thread,
                             uint64_t seed) {
  ObjectBase base;
  base.CreateObject("q", adt::MakeQueueSpec());
  Executor exec(base,
                {.protocol = protocol, .granularity = granularity});
  std::atomic<int64_t> next_tag{1};
  std::mutex seen_mu;
  std::vector<int64_t> consumed;
  std::atomic<int64_t> produced{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(seed + t * 31);
      for (int i = 0; i < txns_per_thread; ++i) {
        if (rng.Bernoulli(0.55)) {
          int64_t tag = next_tag.fetch_add(1);
          TxnResult r = exec.RunTransaction("produce", [tag](MethodCtx& txn) {
            txn.Invoke("q", "enqueue", {tag});
            return Value();
          });
          if (r.committed) produced.fetch_add(1);
        } else {
          TxnResult r = exec.RunTransaction("consume", [](MethodCtx& txn) {
            return txn.Invoke("q", "dequeue");
          });
          if (r.committed && !r.ret.is_none()) {
            std::lock_guard<std::mutex> g(seen_mu);
            consumed.push_back(r.ret.AsInt());
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // No duplicates among consumed tags.
  std::sort(consumed.begin(), consumed.end());
  EXPECT_TRUE(std::adjacent_find(consumed.begin(), consumed.end()) ==
              consumed.end())
      << ProtocolName(protocol) << " delivered a duplicate item";
  // Remaining queue length = produced - consumed.
  TxnResult len = exec.RunTransaction("len", [](MethodCtx& txn) {
    return txn.Invoke("q", "length");
  });
  EXPECT_EQ(len.ret.AsInt(),
            produced.load() - static_cast<int64_t>(consumed.size()))
      << ProtocolName(protocol) << " lost items";
  VerifyHistory(exec, ProtocolName(protocol));
}

/// Random mixed-ADT stress with nesting and occasional parallel batches.
inline void RunMixedStressScenario(Protocol protocol,
                                   cc::Granularity granularity, int threads,
                                   int txns_per_thread, uint64_t seed) {
  ObjectBase base;
  base.CreateObject("reg", adt::MakeRegisterSpec(0));
  base.CreateObject("ctr", adt::MakeCounterSpec(0));
  base.CreateObject("set", adt::MakeSetSpec());
  base.CreateObject("acct", adt::MakeBankAccountSpec(10'000));
  Executor exec(base,
                {.protocol = protocol, .granularity = granularity});
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(seed + t * 1237);
      for (int i = 0; i < txns_per_thread; ++i) {
        int64_t k = rng.Range(0, 9);
        int64_t d = rng.Range(1, 5);
        int shape = static_cast<int>(rng.Uniform(4));
        exec.RunTransaction("stress", [=](MethodCtx& txn) -> Value {
          switch (shape) {
            case 0:
              txn.Invoke("set", "insert", {k});
              txn.Invoke("ctr", "add", {1});
              break;
            case 1:
              txn.Invoke("set", "erase", {k});
              txn.Invoke("reg", "increment", {d});
              break;
            case 2: {
              Value ok = txn.Invoke("acct", "withdraw", {d});
              if (ok.AsBool()) txn.Invoke("ctr", "add", {d});
              break;
            }
            default:
              txn.InvokeParallel({{"ctr", "add", {d}},
                                  {"reg", "increment", {d}}});
              break;
          }
          return Value();
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  VerifyHistory(exec, ProtocolName(protocol));
}

}  // namespace objectbase::rt

#endif  // OBJECTBASE_TESTS_PROTOCOL_HARNESS_H_
