file(REMOVE_RECURSE
  "CMakeFiles/btree_range_test.dir/tests/btree_range_test.cc.o"
  "CMakeFiles/btree_range_test.dir/tests/btree_range_test.cc.o.d"
  "btree_range_test"
  "btree_range_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
