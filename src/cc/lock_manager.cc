#include "src/cc/lock_manager.h"

#include <chrono>
#include <functional>
#include <thread>

#include "src/common/thread_slot.h"
#include "src/runtime/object.h"
#include "src/runtime/txn.h"

namespace objectbase::cc {

uint64_t ThisThreadKey() { return common::DenseThreadSlot(); }

LockManager::LockManager() = default;
LockManager::~LockManager() = default;

namespace {

// Does the held lock `entry` block the new request `req`?  The direction
// matters (Definition 3 is order-sensitive): the holder's step happened
// first, so the question is whether holder-then-requester fails to commute,
// i.e. conflicts(held, requested).
bool EntryBlocks(const adt::AdtSpec& spec, const LockManager::Request& held,
                 const LockManager::Request& req) {
  if (held.exclusive || req.exclusive) return true;
  if (held.ret.has_value() && req.ret.has_value()) {
    adt::StepView first{held.op->name, &held.args, &*held.ret, held.op->id};
    adt::StepView second{req.op->name, &req.args, &*req.ret, req.op->id};
    return spec.StepConflicts(first, second);
  }
  // Operation granularity (or a mixed pair): be conservative.
  return spec.OpConflictsById(held.op->id, req.op->id);
}

// Would granting `req` to `txn` barge past an earlier conflicting waiter?
// Without this check a stream of mutually-commuting acquisitions can starve
// a conflicting waiter forever (e.g. continuous Counter.adds starving a
// get).  Conservative symmetric test; ancestors are exempt like in rule 2.
bool BargesPastWaiter(const adt::AdtSpec& spec, rt::TxnNode& txn,
                      const LockManager::Request& req,
                      rt::TxnNode* waiter_txn,
                      const LockManager::Request& waiter_req) {
  if (waiter_txn == &txn || txn.HasAncestorOrSelf(waiter_txn)) return false;
  return EntryBlocks(spec, waiter_req, req) ||
         EntryBlocks(spec, req, waiter_req);
}

}  // namespace

LockManager::ObjTable& LockManager::GetTable(uint32_t object_id) {
  {
    std::lock_guard<std::mutex> g(tables_mu_);
    if (object_id >= tables_.size()) tables_.resize(object_id + 1);
    if (tables_[object_id] == nullptr) {
      tables_[object_id] = std::make_unique<ObjTable>();
    }
    return *tables_[object_id];
  }
}

bool LockManager::HoldsHereLocked(const ObjTable& table, rt::TxnNode& txn) {
  for (const Entry& e : table.entries) {
    if (txn.HasAncestorOrSelf(e.owner)) return true;
  }
  return false;
}

bool LockManager::AlreadyHeldLocked(const ObjTable& table, rt::TxnNode& txn,
                                    const Request& req) {
  for (const Entry& e : table.entries) {
    // Descriptor pointers are per-spec singletons, so identical-op tests
    // are pointer comparisons.
    if (e.owner == &txn && e.req.exclusive == req.exclusive &&
        e.req.op == req.op && !e.req.ret.has_value() &&
        !req.ret.has_value() && e.req.args == req.args) {
      return true;
    }
  }
  return false;
}

std::vector<uint64_t> LockManager::BlockersLocked(const ObjTable& table,
                                                  rt::TxnNode& txn,
                                                  rt::Object& obj,
                                                  const Request& req,
                                                  uint64_t my_wait_seq) {
  std::vector<uint64_t> blockers;
  for (const Entry& e : table.entries) {
    // Rule 2: owners that are ancestors of the requester never block it.
    if (txn.HasAncestorOrSelf(e.owner)) continue;
    if (EntryBlocks(obj.spec(), e.req, req)) {
      blockers.push_back(e.owner->uid());
    }
  }
  // Fairness: also wait behind earlier conflicting waiters so they cannot
  // starve (they will be granted before us) — EXCEPT when this transaction
  // is already in progress on the object (it or an ancestor holds a lock
  // here).  Queueing an in-progress holder behind a waiter that waits for
  // that very holder would be a deadlock by construction (lock convoys);
  // letting it finish is what unblocks the waiter.
  if (!table.waiters.empty() && !HoldsHereLocked(table, txn)) {
    for (const Waiter& w : table.waiters) {
      if (w.seq >= my_wait_seq) continue;
      if (BargesPastWaiter(obj.spec(), txn, req, w.txn, *w.req)) {
        blockers.push_back(w.txn->uid());
      }
    }
  }
  return blockers;
}

LockManager::Outcome LockManager::Acquire(rt::TxnNode& txn, rt::Object& obj,
                                          Request req) {
  const uint64_t thread_key = ThisThreadKey();
  ObjTable& table = GetTable(obj.id());
  std::unique_lock<std::mutex> g(table.mu);
  if (AlreadyHeldLocked(table, txn, req)) return Outcome::kGranted;
  uint64_t my_seq = UINT64_MAX;  // not a registered waiter yet
  auto unregister = [&]() {
    if (my_seq == UINT64_MAX) return;
    for (auto it = table.waiters.begin(); it != table.waiters.end(); ++it) {
      if (it->seq == my_seq) {
        table.waiters.erase(it);
        break;
      }
    }
    ++table.version;
    table.cv.notify_all();  // waiters behind us may now proceed
  };
  for (;;) {
    // The version is captured while mu is held, so any table mutation
    // between the blocker computation and the wait below bumps it and the
    // wait returns immediately — no release can be missed.
    const uint64_t seen = table.version;
    std::vector<uint64_t> blockers =
        BlockersLocked(table, txn, obj, req, my_seq);
    if (blockers.empty()) {
      unregister();
      table.entries.push_back(Entry{&txn, std::move(req)});
      // A new entry can unblock a waiter too: it may flip the requester's
      // HoldsHereLocked fairness exemption, so it counts as a mutation.
      ++table.version;
      table.cv.notify_all();
      txn.NoteLockedObject(obj.id());
      return Outcome::kGranted;
    }
    if (my_seq == UINT64_MAX) {
      my_seq = table.next_wait_seq++;
      table.waiters.push_back(Waiter{my_seq, &txn, &req});
    }
    if (wfg_.SetWaitingWouldDeadlock(thread_key, blockers)) {
      unregister();
      return Outcome::kDeadlock;
    }
    // Notification-driven: woken the moment a release/inheritance/waiter
    // departure bumps the version.  The long timeout is a safety net only,
    // not a polling interval.
    table.cv.wait_for(g, std::chrono::milliseconds(250),
                      [&] { return table.version != seen; });
    wfg_.ClearWaiting(thread_key);
  }
}

LockManager::TryOutcome LockManager::TryAcquire(rt::TxnNode& txn,
                                                rt::Object& obj,
                                                const Request& req) {
  ObjTable& table = GetTable(obj.id());
  std::lock_guard<std::mutex> g(table.mu);
  std::vector<uint64_t> blockers =
      BlockersLocked(table, txn, obj, req, UINT64_MAX);
  if (blockers.empty()) {
    table.entries.push_back(Entry{&txn, req});
    ++table.version;
    table.cv.notify_all();
    txn.NoteLockedObject(obj.id());
    return TryOutcome::kGranted;
  }
  return TryOutcome::kWouldBlock;
}

LockManager::Outcome LockManager::WaitWhileBlocked(rt::TxnNode& txn,
                                                   rt::Object& obj,
                                                   const Request& req) {
  const uint64_t thread_key = ThisThreadKey();
  ObjTable& table = GetTable(obj.id());
  std::unique_lock<std::mutex> g(table.mu);
  uint64_t my_seq = table.next_wait_seq++;
  table.waiters.push_back(Waiter{my_seq, &txn, &req});
  auto unregister = [&]() {
    for (auto it = table.waiters.begin(); it != table.waiters.end(); ++it) {
      if (it->seq == my_seq) {
        table.waiters.erase(it);
        break;
      }
    }
    ++table.version;
    table.cv.notify_all();
  };
  for (;;) {
    const uint64_t seen = table.version;
    std::vector<uint64_t> blockers =
        BlockersLocked(table, txn, obj, req, my_seq);
    if (blockers.empty()) {
      unregister();
      return Outcome::kGranted;
    }
    if (wfg_.SetWaitingWouldDeadlock(thread_key, blockers)) {
      unregister();
      return Outcome::kDeadlock;
    }
    table.cv.wait_for(g, std::chrono::milliseconds(250),
                      [&] { return table.version != seen; });
    wfg_.ClearWaiting(thread_key);
  }
}

void LockManager::ForEachTable(const std::function<void(ObjTable&)>& fn) {
  size_t n;
  {
    std::lock_guard<std::mutex> g(tables_mu_);
    n = tables_.size();
  }
  for (size_t i = 0; i < n; ++i) {
    ObjTable* table;
    {
      std::lock_guard<std::mutex> g(tables_mu_);
      table = tables_[i].get();
    }
    if (table != nullptr) fn(*table);
  }
}

void LockManager::TransferToParent(rt::TxnNode& child) {
  rt::TxnNode* parent = child.parent();
  if (parent == nullptr) return;
  // Only the tables of objects the child actually locked are touched (rule
  // 5's inheritance); the set then belongs to the parent.
  std::vector<uint32_t> touched = child.TakeLockedObjects();
  for (uint32_t obj_id : touched) {
    ObjTable& table = GetTable(obj_id);
    std::lock_guard<std::mutex> g(table.mu);
    bool changed = false;
    for (Entry& e : table.entries) {
      if (e.owner == &child) {
        e.owner = parent;
        changed = true;
      }
    }
    if (changed) {
      ++table.version;
      table.cv.notify_all();
    }
  }
  parent->MergeLockedObjects(touched);
}

namespace {
void CollectLockedObjects(rt::TxnNode& node, std::vector<uint32_t>& out) {
  for (uint32_t o : node.SnapshotLockedObjects()) out.push_back(o);
  for (auto& child : node.children()) CollectLockedObjects(*child, out);
}
}  // namespace

void LockManager::ReleaseSubtree(rt::TxnNode& root) {
  std::vector<uint32_t> touched;
  CollectLockedObjects(root, touched);
  for (uint32_t obj_id : touched) {
    ObjTable& table = GetTable(obj_id);
    std::lock_guard<std::mutex> g(table.mu);
    size_t before = table.entries.size();
    for (auto it = table.entries.begin(); it != table.entries.end();) {
      if (it->owner->HasAncestorOrSelf(&root)) {
        it = table.entries.erase(it);
      } else {
        ++it;
      }
    }
    if (table.entries.size() != before) {
      ++table.version;
      table.cv.notify_all();
    }
  }
}

size_t LockManager::LockCount() {
  size_t n = 0;
  ForEachTable([&](ObjTable& table) {
    std::lock_guard<std::mutex> g(table.mu);
    n += table.entries.size();
  });
  return n;
}

}  // namespace objectbase::cc
