// The headline property test: FOR EVERY protocol, granularity and seed,
// every history the runtime produces under contention is legal (Definition
// 6), has an acyclic serialisation graph whose serial replay is equivalent
// (Theorem 2 / Definition 7) and satisfies Theorem 5's conditions.
//
// This is the executable form of Theorems 3 and 4 (and of the certifier's
// correctness): a bug in any lock rule, timestamp check, undo path or
// cascade would surface here as a cyclic SG, a replay divergence or an
// illegal committed projection.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <thread>

#include "src/adt/bank_account_adt.h"
#include "src/adt/btree_dictionary_adt.h"
#include "src/adt/counter_adt.h"
#include "src/adt/queue_adt.h"
#include "src/adt/register_adt.h"
#include "src/adt/set_adt.h"
#include "src/cc/policy_governor.h"
#include "src/common/rng.h"
#include "src/model/legality.h"
#include "src/model/local_graphs.h"
#include "src/model/serialiser.h"
#include "src/runtime/executor.h"
#include "src/workload/fsm.h"
#include "src/workload/fsm_scenarios.h"

namespace objectbase::rt {
namespace {

struct Config {
  Protocol protocol;
  cc::Granularity granularity;
  uint64_t seed;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  return std::string(ProtocolName(info.param.protocol)) +
         (info.param.granularity == cc::Granularity::kStep ? "_step" : "_op") +
         "_s" + std::to_string(info.param.seed);
}

class SerialisabilityPropertyTest : public ::testing::TestWithParam<Config> {};

TEST_P(SerialisabilityPropertyTest, RandomContendedRunsAreSerialisable) {
  const Config cfg = GetParam();
  ObjectBase base;
  base.CreateObject("r0", adt::MakeRegisterSpec(0));
  base.CreateObject("r1", adt::MakeRegisterSpec(0));
  base.CreateObject("ctr", adt::MakeCounterSpec(0));
  base.CreateObject("set", adt::MakeSetSpec());
  base.CreateObject("q", adt::MakeQueueSpec());
  base.CreateObject("acct", adt::MakeBankAccountSpec(500));
  Executor exec(base, {.protocol = cfg.protocol,
                       .granularity = cfg.granularity,
                       .max_top_retries = 50});

  const int threads = 4;
  const int txns = 30;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(cfg.seed * 101 + t);
      for (int i = 0; i < txns; ++i) {
        // Random transaction shape: 1-4 operations over random objects,
        // with nesting and occasional parallel batches and user aborts.
        int n_ops = 1 + static_cast<int>(rng.Uniform(4));
        std::vector<int> kinds;
        std::vector<int64_t> keys;
        for (int k = 0; k < n_ops; ++k) {
          kinds.push_back(static_cast<int>(rng.Uniform(7)));
          keys.push_back(rng.Range(0, 5));
        }
        bool user_abort = rng.Bernoulli(0.08);
        exec.RunTransaction("rand", [&, kinds, keys,
                            user_abort](MethodCtx& txn) -> Value {
          for (size_t k = 0; k < kinds.size(); ++k) {
            int64_t key = keys[k];
            switch (kinds[k]) {
              case 0: txn.Invoke("r0", "write", {key}); break;
              case 1: txn.Invoke("r1", "read"); break;
              case 2: txn.Invoke("ctr", "add", {key + 1}); break;
              case 3: txn.Invoke("set", "insert", {key}); break;
              case 4: txn.Invoke("set", "erase", {key}); break;
              case 5:
                if (txn.Invoke("acct", "withdraw", {key + 1}).AsBool()) {
                  txn.Invoke("ctr", "add", {1});
                }
                break;
              default:
                txn.InvokeParallel({{"q", "enqueue", {key}},
                                    {"ctr", "add", {1}}});
                break;
            }
          }
          if (user_abort) txn.Abort();
          return Value();
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  model::History h = exec.recorder().Snapshot();
  model::LegalityResult legal = model::CheckLegal(h, /*committed_only=*/true);
  ASSERT_TRUE(legal.legal) << legal.error;
  model::SerialisabilityCheck check = model::CheckSerialisable(h);
  ASSERT_TRUE(check.serialisable) << check.detail;
  model::Theorem5Result t5 = model::CheckTheorem5(h);
  ASSERT_TRUE(t5.holds) << t5.detail;
  EXPECT_GT(exec.stats().committed.load(), 0u);
}

std::vector<Config> AllConfigs() {
  std::vector<Config> configs;
  for (Protocol p : {Protocol::kN2pl, Protocol::kNto, Protocol::kCert,
                     Protocol::kGemstone, Protocol::kMixed}) {
    for (cc::Granularity g :
         {cc::Granularity::kOperation, cc::Granularity::kStep}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        configs.push_back({p, g, seed});
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerialisabilityPropertyTest,
                         ::testing::ValuesIn(AllConfigs()), ConfigName);

// --- cross-protocol randomized fuzz ----------------------------------------
//
// A standing stress oracle for step-path rewrites: every round randomises
// the WHOLE configuration — protocol (all five plus MIXED with random
// per-object intra policies), granularity, thread count, object mix
// (including the latch-crabbing B-tree), journal-GC cadence (including
// "fold eagerly", which hammers chunk retirement, and "never", which grows
// long scan windows) — then asserts the recorded history is legal, its
// serialisation graph acyclic with an equivalent serial replay, and
// Theorem 5's conditions hold.
//
// CI smoke runs a few rounds; `ctest -L fuzz` runs the long registration
// (see CMakeLists.txt).  Tunables:
//   OBJECTBASE_FUZZ_ROUNDS — rounds per run (default 3);
//   OBJECTBASE_FUZZ_SEED   — base seed; DEFAULTS TO RANDOM, and is printed
//                            at the start of the run — copy it into the
//                            env to reproduce a failure.
//   OBJECTBASE_FUZZ_BTREE  — "1" forces the crabbing B-tree dictionary
//                            into every round and widens the op mix with
//                            dict get/del: recorded shared-latch appends
//                            (the apply-order hook path) in every round
//                            (the nightly recorded-crabbing pass).

int FuzzRounds() {
  const char* s = std::getenv("OBJECTBASE_FUZZ_ROUNDS");
  if (s == nullptr) return 3;
  const int v = std::atoi(s);
  return v > 0 ? v : 3;
}

uint64_t FuzzBaseSeed() {
  const char* s = std::getenv("OBJECTBASE_FUZZ_SEED");
  if (s != nullptr) return std::strtoull(s, nullptr, 0);
  return std::random_device{}();
}

bool FuzzForceBtree() {
  const char* s = std::getenv("OBJECTBASE_FUZZ_BTREE");
  return s != nullptr && s[0] == '1';
}

void RunFuzzRound(uint64_t seed) {
  Rng rng(seed);
  const Protocol protocols[] = {Protocol::kN2pl, Protocol::kNto,
                                Protocol::kCert, Protocol::kGemstone,
                                Protocol::kMixed};
  const Protocol protocol = protocols[rng.Uniform(5)];
  const cc::Granularity granularity = rng.Bernoulli(0.5)
                                          ? cc::Granularity::kStep
                                          : cc::Granularity::kOperation;
  const int threads = 2 + static_cast<int>(rng.Uniform(4));   // 2..5
  const int txns = 10 + static_cast<int>(rng.Uniform(25));    // 10..34
  // Journal-GC cadence: eager folding stresses chunk retirement under
  // racing scans; 0 stresses long lock-free windows.
  const size_t fold_thresholds[] = {0, 8, 64};
  const size_t fold_threshold = fold_thresholds[rng.Uniform(3)];
  // The draw always happens so pinned seeds replay identically whether or
  // not the btree override is set.
  const bool with_btree = rng.Bernoulli(0.5) || FuzzForceBtree();
  // Governor draw too: ALWAYS performed (same replay-determinism rule),
  // consumed only by MIXED rounds — the legality/SG oracles then cover
  // histories whose intra-object policies flipped mid-run under load.
  const bool with_governor = rng.Bernoulli(0.5);
  // Sharding draws (all unconditional, same replay rule): shard count —
  // 1 exercises the classic wiring, >1 the sharded topology with eager
  // registration and cross-shard commit-wait; cross_ratio biases how often
  // a transaction's footprint spans objects (and thus shards); governor
  // watermarks vary per round so the hysteresis band itself is fuzzed.
  const uint32_t shard_counts[] = {1, 2, 4, 8};
  const uint32_t nshards = shard_counts[rng.Uniform(4)];
  const double cross_ratios[] = {0.0, 0.5, 1.0};
  const double cross_ratio = cross_ratios[rng.Uniform(3)];
  const double g_high = 0.02 + 0.02 * static_cast<double>(rng.Uniform(4));
  const double g_low = g_high / 4.0;

  ShardedBase base(nshards);
  base.CreateObject("r0", adt::MakeRegisterSpec(0));
  base.CreateObject("ctr", adt::MakeCounterSpec(0));
  base.CreateObject("set", adt::MakeSetSpec());
  base.CreateObject("q", adt::MakeQueueSpec());
  base.CreateObject("acct", adt::MakeBankAccountSpec(500));
  if (with_btree) base.CreateObject("dict", adt::MakeBTreeDictionarySpec(8));
  Executor exec(base, {.protocol = protocol,
                       .granularity = granularity,
                       .max_top_retries = 50,
                       .nto_gc = rng.Bernoulli(0.8),
                       .journal_fold_threshold = fold_threshold});
  if (protocol == Protocol::kMixed) {
    const cc::IntraPolicy policies[] = {cc::IntraPolicy::kLocal2pl,
                                        cc::IntraPolicy::kTimestamp,
                                        cc::IntraPolicy::kOptimistic};
    for (const char* name : {"r0", "ctr", "set", "q", "acct"}) {
      ASSERT_TRUE(exec.SetIntraPolicy(name, policies[rng.Uniform(3)]));
    }
    // The B-tree keeps its default (crabbing) policy when present.
  }
  std::unique_ptr<cc::PolicyGovernor> governor;
  if (protocol == Protocol::kMixed && with_governor &&
      exec.mixed() != nullptr) {
    // Twitchy settings so flips actually happen inside a short round;
    // watermarks come from the per-round draw above.
    cc::GovernorOptions gopts;
    gopts.sample_interval_us = 300;
    gopts.high_watermark = g_high;
    gopts.low_watermark = g_low;
    gopts.min_dwell_samples = 1;
    governor = std::make_unique<cc::PolicyGovernor>(
        *exec.mixed(), cc::PolicyGovernor::AllObjects(base), gopts);
    // Sharded MIXED: flips must land on the object's home-shard instance,
    // not just shard 0's — route them through the executor's fan-out.
    governor->SetApplyHook([&exec](uint32_t id, cc::IntraPolicy p) {
      return exec.SetIntraPolicy(id, p);
    });
    governor->Start();
  }

  std::printf(
      "[fuzz]   %s %s threads=%d txns=%d fold=%zu btree=%d gov=%d "
      "shards=%u xratio=%.1f\n",
      ProtocolName(protocol),
      granularity == cc::Granularity::kStep ? "step" : "op", threads, txns,
      fold_threshold, with_btree ? 1 : 0, governor != nullptr ? 1 : 0,
      nshards, cross_ratio);
  std::fflush(stdout);

  // Forced-btree rounds widen the mix with dict get/del (kinds 8/9) so
  // most steps ride the shared-latch crabbing path; the default mix is
  // unchanged so pinned seeds replay identically.
  const int kinds = with_btree ? (FuzzForceBtree() ? 10 : 8) : 7;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng trng(seed * 101 + t);
      for (int i = 0; i < txns; ++i) {
        const int n_ops = 1 + static_cast<int>(trng.Uniform(4));
        // Footprint shape: a spanning transaction draws from the whole op
        // mix (multi-object kinds included — under sharding its footprint
        // usually crosses shards); a confined one repeats a single-object
        // kind, staying on one object and therefore one shard.
        const bool spanning = trng.Bernoulli(cross_ratio);
        const int confined_kind = static_cast<int>(trng.Uniform(5));
        std::vector<int> ops;
        std::vector<int64_t> keys;
        for (int k = 0; k < n_ops; ++k) {
          ops.push_back(spanning ? static_cast<int>(trng.Uniform(kinds))
                                 : confined_kind);
          keys.push_back(trng.Range(0, 7));
        }
        const bool user_abort = trng.Bernoulli(0.08);
        exec.RunTransaction("fuzz", [&, ops, keys,
                            user_abort](MethodCtx& txn) -> Value {
          for (size_t k = 0; k < ops.size(); ++k) {
            const int64_t key = keys[k];
            switch (ops[k]) {
              case 0: txn.Invoke("r0", "write", {key}); break;
              case 1: txn.Invoke("r0", "read"); break;
              case 2: txn.Invoke("ctr", "add", {key + 1}); break;
              case 3: txn.Invoke("set", "insert", {key}); break;
              case 4: txn.Invoke("set", "erase", {key}); break;
              case 5:
                if (txn.Invoke("acct", "withdraw", {key + 1}).AsBool()) {
                  txn.Invoke("ctr", "add", {1});
                }
                break;
              case 6:
                txn.InvokeParallel({{"q", "enqueue", {key}},
                                    {"ctr", "add", {1}}});
                break;
              case 7:
                if (txn.Invoke("dict", "put", {key, key}).is_none()) {
                  txn.Invoke("ctr", "add", {1});
                }
                break;
              case 8: txn.Invoke("dict", "get", {key}); break;
              default: txn.Invoke("dict", "del", {key}); break;
            }
          }
          if (user_abort) txn.Abort();
          return Value();
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  if (governor != nullptr) {
    governor->Stop();
    std::printf("[fuzz]   governor flips=%llu\n",
                static_cast<unsigned long long>(governor->flips()));
    std::fflush(stdout);
  }

  model::History h = exec.recorder().Snapshot();
  model::LegalityResult legal = model::CheckLegal(h, /*committed_only=*/true);
  if (!legal.legal) {
    // Reproduction aid: dump every object's applied order with abort
    // marks before failing (the seed is already in the trace).
    for (model::ObjectId o = 0; o < h.object_order.size(); ++o) {
      std::printf("[fuzz] object %s applied order:\n",
                  h.object_names[o].c_str());
      for (model::StepId sid : h.object_order[o]) {
        const model::Step& s = h.steps[sid];
        std::string args;
        for (const Value& a : s.args) args += a.ToString() + ",";
        std::printf("  seq=%llu exec=%u top=%u %s(%s)=%s%s\n",
                    static_cast<unsigned long long>(s.end_seq), s.exec,
                    h.TopAncestor(s.exec), s.op.c_str(), args.c_str(),
                    s.ret.ToString().c_str(),
                    h.EffectivelyAborted(s.exec) ? " [aborted]" : "");
      }
    }
    std::fflush(stdout);
  }
  ASSERT_TRUE(legal.legal) << legal.error;
  model::SerialisabilityCheck check = model::CheckSerialisable(h);
  ASSERT_TRUE(check.serialisable) << check.detail;
  model::Theorem5Result t5 = model::CheckTheorem5(h);
  ASSERT_TRUE(t5.holds) << t5.detail;
  EXPECT_GT(exec.stats().committed.load(), 0u);
}

TEST(CrossProtocolFuzz, RandomisedRunsAreSerialisable) {
  const int rounds = FuzzRounds();
  const uint64_t base_seed = FuzzBaseSeed();
  std::printf("[fuzz] OBJECTBASE_FUZZ_SEED=%llu OBJECTBASE_FUZZ_ROUNDS=%d\n",
              static_cast<unsigned long long>(base_seed), rounds);
  std::fflush(stdout);
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = base_seed + uint64_t{1000003} * round;
    SCOPED_TRACE("round=" + std::to_string(round) +
                 " seed=" + std::to_string(seed));
    RunFuzzRound(seed);
    if (::testing::Test::HasFailure()) break;
  }
}

// --- FSM-scenario fuzz -------------------------------------------------------
//
// The same oracle block, fed by the FSM workload framework instead of the
// flat op mix: every round randomises protocol, granularity, shard count,
// runner mode (serial / parallel / composed) and the governor draw, then
// runs ALL THREE seeded scenarios (secondary-index maintenance, bounded
// queue pipeline, read-mostly catalogue) through an FsmRunner.  Each
// scenario carries its own cross-object invariants (checked post-commit at
// fresh serialisation points), so a round asserts BOTH the scenario
// invariants (res.failures empty) and the model oracles over the recorded
// history.  Tunables: OBJECTBASE_FSM_FUZZ_ROUNDS (default 2) and the shared
// OBJECTBASE_FUZZ_SEED.

int FsmFuzzRounds() {
  const char* s = std::getenv("OBJECTBASE_FSM_FUZZ_ROUNDS");
  if (s == nullptr) return 2;
  const int v = std::atoi(s);
  return v > 0 ? v : 2;
}

void RunFsmFuzzRound(uint64_t seed) {
  Rng rng(seed);
  const Protocol protocols[] = {Protocol::kN2pl, Protocol::kNto,
                                Protocol::kCert, Protocol::kGemstone,
                                Protocol::kMixed};
  const Protocol protocol = protocols[rng.Uniform(5)];
  const cc::Granularity granularity = rng.Bernoulli(0.5)
                                          ? cc::Granularity::kStep
                                          : cc::Granularity::kOperation;
  const workload::FsmMode modes[] = {workload::FsmMode::kSerial,
                                     workload::FsmMode::kParallel,
                                     workload::FsmMode::kComposed};
  const workload::FsmMode mode = modes[rng.Uniform(3)];
  const uint32_t shard_counts[] = {1, 2, 4};
  const uint32_t nshards = shard_counts[rng.Uniform(3)];
  const size_t fold_thresholds[] = {0, 8, 64};
  const size_t fold_threshold = fold_thresholds[rng.Uniform(3)];
  const int composed_threads = 2 + static_cast<int>(rng.Uniform(3));  // 2..4
  const int iterations = 15 + static_cast<int>(rng.Uniform(16));      // 15..30
  // Governor and per-object policy draws are ALWAYS performed (replay
  // determinism: a pinned seed replays identically whatever the protocol
  // draw was); only MIXED rounds consume them.
  const bool with_governor = rng.Bernoulli(0.5);
  const double g_high = 0.02 + 0.02 * static_cast<double>(rng.Uniform(4));
  const cc::IntraPolicy intra_policies[] = {cc::IntraPolicy::kLocal2pl,
                                            cc::IntraPolicy::kTimestamp,
                                            cc::IntraPolicy::kOptimistic};
  const char* objects[] = {"si:dict", "si:index",   "qp:q0",
                           "qp:q1",   "qp:q2",      "qp:produced",
                           "qp:consumed", "cat:cat", "cat:version"};
  cc::IntraPolicy drawn[9];
  for (size_t i = 0; i < 9; ++i) drawn[i] = intra_policies[rng.Uniform(3)];

  workload::SecondaryIndexParams si;
  si.keyspace = 32;
  si.prefill = 8;
  si.threads = 2;
  si.iterations = iterations;
  workload::QueuePipelineParams qp;
  qp.stages = 3;
  qp.bound = 4;
  qp.threads = 2;
  qp.iterations = iterations;
  workload::CatalogueParams cat;
  cat.keyspace = 64;
  cat.prefill = 16;
  cat.threads = 2;
  cat.iterations = iterations;

  ShardedBase base(nshards);
  workload::SetupSecondaryIndex(base, si);
  workload::SetupQueuePipeline(base, qp);
  workload::SetupCatalogue(base, cat);
  workload::FsmWorkload w_si = workload::MakeSecondaryIndexFsm(si);
  workload::FsmWorkload w_qp = workload::MakeQueuePipelineFsm(qp);
  workload::FsmWorkload w_cat = workload::MakeCatalogueFsm(cat);
  const std::vector<const workload::FsmWorkload*> all = {&w_si, &w_qp, &w_cat};

  Executor exec(base, {.protocol = protocol,
                       .granularity = granularity,
                       .max_top_retries = 50,
                       .journal_fold_threshold = fold_threshold});
  if (protocol == Protocol::kMixed) {
    for (size_t i = 0; i < 9; ++i) {
      ASSERT_TRUE(exec.SetIntraPolicy(objects[i], drawn[i])) << objects[i];
    }
  }
  std::unique_ptr<cc::PolicyGovernor> governor;
  if (protocol == Protocol::kMixed && with_governor &&
      exec.mixed() != nullptr) {
    cc::GovernorOptions gopts;
    gopts.sample_interval_us = 300;
    gopts.high_watermark = g_high;
    gopts.low_watermark = g_high / 4.0;
    gopts.min_dwell_samples = 1;
    governor = std::make_unique<cc::PolicyGovernor>(
        *exec.mixed(), cc::PolicyGovernor::AllObjects(base), gopts);
    governor->SetApplyHook([&exec](uint32_t id, cc::IntraPolicy p) {
      return exec.SetIntraPolicy(id, p);
    });
    governor->Start();
  }

  std::printf("[fsm-fuzz] %s %s mode=%s shards=%u fold=%zu walkers=%d "
              "iters=%d gov=%d\n",
              ProtocolName(protocol),
              granularity == cc::Granularity::kStep ? "step" : "op",
              workload::FsmModeName(mode), nshards, fold_threshold,
              composed_threads, iterations, governor != nullptr ? 1 : 0);
  std::fflush(stdout);

  workload::FsmRunner runner(exec, {.mode = mode, .seed = seed,
                                    .composed_threads = composed_threads});
  workload::FsmRunResult res = runner.Run(all);
  if (governor != nullptr) governor->Stop();

  std::string failures;
  for (const std::string& f : res.failures) failures += f + "\n";
  ASSERT_TRUE(res.failures.empty()) << failures;
  EXPECT_GT(res.committed, 0u);

  model::History h = exec.recorder().Snapshot();
  model::LegalityResult legal = model::CheckLegal(h, /*committed_only=*/true);
  ASSERT_TRUE(legal.legal) << legal.error;
  model::SerialisabilityCheck check = model::CheckSerialisable(h);
  ASSERT_TRUE(check.serialisable) << check.detail;
  model::Theorem5Result t5 = model::CheckTheorem5(h);
  ASSERT_TRUE(t5.holds) << t5.detail;
}

TEST(FsmFuzz, ScenarioRoundsAreSerialisable) {
  const int rounds = FsmFuzzRounds();
  const uint64_t base_seed = FuzzBaseSeed();
  std::printf(
      "[fsm-fuzz] OBJECTBASE_FUZZ_SEED=%llu OBJECTBASE_FSM_FUZZ_ROUNDS=%d\n",
      static_cast<unsigned long long>(base_seed), rounds);
  std::fflush(stdout);
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = base_seed + uint64_t{1000033} * round;
    SCOPED_TRACE("round=" + std::to_string(round) +
                 " seed=" + std::to_string(seed));
    RunFsmFuzzRound(seed);
    if (::testing::Test::HasFailure()) break;
  }
}

// A negative control: the oracle is not vacuous.  Running the same
// contended workload with NO concurrency control (a deliberately broken
// "controller" emulated by direct state access) must be flagged — here we
// emulate it by building a history with a known cycle and checking the
// oracle rejects it (the Section 2 example lives in
// serialisation_graph_test; this guards the end-to-end path).
TEST(SerialisabilityOracleControl, OracleRejectsKnownBadHistory) {
  // Build via the runtime with CERT but forge the history afterwards:
  // swap two conflicting steps' application order to fabricate a cycle.
  ObjectBase base;
  base.CreateObject("a", adt::MakeRegisterSpec(0));
  base.CreateObject("b", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = Protocol::kCert});
  exec.RunTransaction("T1", [](MethodCtx& txn) {
    txn.Invoke("a", "write", {1});
    txn.Invoke("b", "write", {1});
    return Value();
  });
  exec.RunTransaction("T2", [](MethodCtx& txn) {
    txn.Invoke("a", "write", {2});
    txn.Invoke("b", "write", {2});
    return Value();
  });
  model::History h = exec.recorder().Snapshot();
  ASSERT_TRUE(model::CheckSerialisable(h).serialisable);
  // Forge: reverse B's application order (T2's write before T1's) => the
  // serialisation orders at A and B now disagree.
  model::ObjectId b_id = 1;
  ASSERT_EQ(h.object_names[b_id], "b");
  std::swap(h.object_order[b_id][0], h.object_order[b_id][1]);
  model::SerialisabilityCheck check = model::CheckSerialisable(h);
  EXPECT_FALSE(check.serialisable);
}

}  // namespace
}  // namespace objectbase::rt
