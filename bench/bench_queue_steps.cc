// E2 — Step-granularity (return-value-aware) locks vs operation locks on
// queues.
//
// Claim (Section 5.1): "an Enqueue conflicts with a Dequeue only if the
// latter returns the item placed into the queue by the former.  Thus, if we
// locked operations with no regard to their return values, an Enqueue
// operation would delay any Dequeue operation" — step locks recover that
// concurrency, most visibly when queues stay non-empty.
#include "bench/bench_util.h"

#include "src/adt/queue_adt.h"

using namespace objectbase;  // NOLINT

namespace {

// Pre-loads each queue so dequeues rarely observe empty (an empty-queue
// dequeue conflicts with every enqueue even at step granularity).
void Prefill(rt::Executor& exec, const workload::QueueParams& p) {
  for (int q = 0; q < p.queues; ++q) {
    std::string name = "queue:" + std::to_string(q);
    exec.RunTransaction("prefill", [&](rt::MethodCtx& txn) {
      for (int64_t i = 0; i < p.prefill; ++i) {
        txn.Invoke(name, "enqueue", {-1000 - i});
      }
      return Value();
    });
  }
}

}  // namespace

int main() {
  bench::Banner("E2: queue step vs operation locking",
                "Section 5.1's Enqueue/Dequeue example: return-value-aware "
                "locks vs operation-class locks under N2PL");
  const int scale = bench::Scale();

  TablePrinter table({"queues", "prefill", "granularity", "tput/s",
                      "abort-ratio", "deadlock", "p99-ms"});
  for (int queues : {1, 4}) {
    for (int64_t prefill : {int64_t{0}, int64_t{512}}) {
      for (cc::Granularity g :
           {cc::Granularity::kOperation, cc::Granularity::kStep}) {
        workload::QueueParams p;
        p.queues = queues;
        p.batch = 2;
        p.prefill = prefill;
        p.spin_per_op = 30000;  // long methods: blocking dominates mechanics
        workload::WorkloadSpec spec = workload::MakeQueueSpec(p);
        spec.threads = 8;
        spec.txns_per_thread = 100 * scale;
        spec.seed = 7 + queues;

        rt::ObjectBase base;
        workload::SetupQueues(base, p);
        rt::Executor exec(base, {.protocol = rt::Protocol::kN2pl,
                                 .granularity = g,
                                 .record = false});
        Prefill(exec, p);
        workload::RunMetrics m = workload::RunWorkload(exec, spec);
        table.AddRow(
            {TablePrinter::Fmt(int64_t{queues}), TablePrinter::Fmt(prefill),
             g == cc::Granularity::kOperation ? "operation" : "step",
             TablePrinter::Fmt(m.Throughput(), 0),
             TablePrinter::Fmt(m.AbortRatio(), 3),
             TablePrinter::Fmt(m.deadlocks),
             TablePrinter::Fmt(m.latency_ns.Percentile(0.99) / 1e6, 2)});
        bench::JsonLine("queue_steps")
            .Field("name",
                   g == cc::Granularity::kOperation ? "operation" : "step")
            .Field("queues", queues)
            .Field("prefill", prefill)
            .Field("ns_per_op", m.Throughput() > 0 ? 1e9 / m.Throughput() : 0.0)
            .Field("throughput", m.Throughput())
            .Field("abort_ratio", m.AbortRatio())
            .Emit();
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape: step >= operation everywhere; the largest "
              "gap at few queues with\nprefill>0 (non-empty queues: "
              "enqueues and dequeues of distinct items commute).\nWith "
              "prefill=0 dequeues often see the empty queue, which "
              "conflicts with every\nenqueue — the step-mode advantage "
              "shrinks, exactly as the paper predicts.\n");
  return 0;
}
