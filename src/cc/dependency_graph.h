// Transaction registry with conflict-dependency tracking.
//
// Shared infrastructure for the non-blocking protocols (NTO, CERT, MIXED).
// The paper's model treats Abort as a local operation whose semantics
// require an aborted execution to leave no trace (Section 3, (a)).  With
// immediate updates that forces two mechanisms the registry provides:
//
//   * DOOMING / CASCADE — if transaction T applied a step conflicting-after
//     a step of U and U later aborts (undoing its effects), T's subsequent
//     behaviour may depend on state that never "happened"; T must abort too.
//   * COMMIT DEPENDENCIES — T may only commit once every transaction it
//     conflicted-after has committed (otherwise a later abort of that
//     transaction would have to cascade into a committed T, which is
//     unrecoverable).
//
// Edges U -> T ("T conflicted after U") always point from the earlier step's
// transaction to the later's.  Under NTO they follow timestamp order, so
// waiting always terminates; under CERT cycles are possible and are exactly
// serialisation cycles — ValidateAndWait detects them and vetoes the commit.
#ifndef OBJECTBASE_CC_DEPENDENCY_GRAPH_H_
#define OBJECTBASE_CC_DEPENDENCY_GRAPH_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/cc/controller.h"

namespace objectbase::cc {

/// Thread-safe registry of top-level transactions and their conflict
/// dependencies.
class DependencyGraph {
 public:
  enum class Status { kActive, kCommitting, kCommitted, kAborted };

  /// Registers a new active top-level transaction.  `counter` is its
  /// environment-issued serial number (the first hts component); the
  /// minimum active counter is the NTO garbage-collection watermark of
  /// Section 5.2.
  void Register(uint64_t top, uint64_t counter);

  /// Records "to conflicted after from" (from must precede to in any
  /// serialisation).  Self-edges are ignored.
  void AddDependency(uint64_t from, uint64_t to);

  /// True iff `top` has been doomed by a cascading abort.
  bool IsDoomed(uint64_t top) const;

  /// Explicitly dooms a transaction (fault injection, validation).
  void Doom(uint64_t top);

  /// Commit protocol: returns false with *reason set if the transaction is
  /// doomed, participates in a dependency cycle (validation failure), or
  /// one of its predecessors aborted (cascade).  Otherwise blocks until all
  /// predecessors have committed and returns true.  The caller must then
  /// MarkCommitted() or MarkAborted().
  bool ValidateAndWait(uint64_t top, AbortReason* reason);

  /// Marks the transaction committed and wakes waiters.
  void MarkCommitted(uint64_t top);

  /// Marks the transaction aborted, dooms every active transaction that
  /// conflicted after it, and wakes waiters.
  void MarkAborted(uint64_t top);

  /// Drops bookkeeping for finished transactions that can no longer affect
  /// any active one (all their successors finished).  Returns the number of
  /// entries dropped.
  size_t Prune();

  /// The smallest serial counter among active transactions, or UINT64_MAX
  /// when none are active.  NTO uses this to retire remembered steps.
  uint64_t MinActiveCounter() const;

  /// Registry size (for E8's memory accounting).
  size_t TrackedCount() const;

 private:
  struct Node {
    Status status = Status::kActive;
    uint64_t counter = 0;
    bool doomed = false;
    std::set<uint64_t> predecessors;  // transactions this one depends on
    std::set<uint64_t> successors;    // transactions depending on this one
    /// OnCycleLocked visited stamp (== visit_gen_ when reached this run).
    mutable uint64_t visit_mark = 0;
  };

  // Requires mu_ held.  DFS from `start` over recorded edges (finished
  // nodes' edges included — see the implementation comment).
  bool OnCycleLocked(uint64_t start) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Node> nodes_;
  // OnCycleLocked scratch, guarded by mu_ like the nodes it walks.
  mutable uint64_t visit_gen_ = 0;
  mutable std::vector<uint64_t> visit_stack_;
};

}  // namespace objectbase::cc

#endif  // OBJECTBASE_CC_DEPENDENCY_GRAPH_H_
