// Executor: runs nested transactions over an ObjectBase under a protocol.
//
// This is the public entry point of the library:
//
//   rt::ObjectBase base;
//   base.CreateObject("acct", adt::MakeBankAccountSpec(100));
//   rt::Executor exec(base, {.protocol = rt::Protocol::kN2pl});
//   auto result = exec.RunTransaction("transfer", [&](rt::MethodCtx& txn) {
//     txn.Invoke("acct", "withdraw", {50});   // message -> method execution
//     return Value();
//   });
//
// Model correspondence:
//   * RunTransaction creates a top-level method execution of the
//     environment object (Definition 1);
//   * MethodCtx::Invoke sends a message: a child method execution runs to
//     completion and its value returns to the sender (Section 1);
//   * MethodCtx::InvokeParallel sends several messages simultaneously —
//     internal parallelism (Section 1(c));
//   * MethodCtx::Local issues a local step on the method's own object;
//   * aborts cascade to descendents but not ancestors: under protocols with
//     SupportsPartialAbort() a parent can catch a child's abort via
//     TryInvoke and try an alternative (Section 3).
//
// Every run can be recorded as a model::History and checked against the
// paper's definitions (see Recorder).
#ifndef OBJECTBASE_RUNTIME_EXECUTOR_H_
#define OBJECTBASE_RUNTIME_EXECUTOR_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cc/controller.h"
#include "src/cc/mixed_controller.h"
#include "src/runtime/object_base.h"
#include "src/runtime/recorder.h"
#include "src/runtime/txn.h"

namespace objectbase::rt {

enum class Protocol { kN2pl, kNto, kCert, kGemstone, kMixed };

const char* ProtocolName(Protocol p);

struct ExecutorOptions {
  Protocol protocol = Protocol::kN2pl;
  cc::Granularity granularity = cc::Granularity::kStep;
  /// Record a model::History of every run (tests/examples: on;
  /// benchmarks: off).
  bool record = true;
  /// Top-level retry budget on abort; retries re-run the transaction body
  /// with a fresh timestamp.
  int max_top_retries = 100;
  /// NTO remembered-step garbage collection (E8 ablation).
  bool nto_gc = true;
};

class MethodCtx;
using MethodFn = std::function<Value(MethodCtx&)>;

struct TxnResult {
  bool committed = false;
  Value ret;
  cc::AbortReason last_abort = cc::AbortReason::kNone;
  int attempts = 0;
};

class Executor {
 public:
  Executor(ObjectBase& base, ExecutorOptions options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Registers a method body on an object.  Unregistered method names that
  /// match an ADT operation get an implicit body executing that single
  /// local step.
  void DefineMethod(const std::string& object, const std::string& method,
                    MethodFn fn);

  /// MIXED only: assigns the object's intra-object policy.
  void SetIntraPolicy(const std::string& object, cc::IntraPolicy policy);

  /// Runs a top-level transaction (with retries on abort).
  TxnResult RunTransaction(const std::string& name, MethodFn body);

  /// Single attempt, no retry (tests that assert on specific aborts).
  TxnResult RunTransactionOnce(const std::string& name, MethodFn body);

  Recorder& recorder() { return recorder_; }
  /// Clears the recorded history and re-snapshots initial states.
  void ResetRecorder() { recorder_.Reset(base_); }

  cc::Controller& controller() { return *controller_; }
  ObjectBase& base() { return base_; }
  const ExecutorOptions& options() const { return options_; }

  struct Stats {
    std::atomic<uint64_t> committed{0};
    std::atomic<uint64_t> aborted{0};   ///< Top-level aborts (incl. retried).
    std::atomic<uint64_t> retries{0};
    std::array<std::atomic<uint64_t>, 8> aborts_by_reason{};

    uint64_t AbortsFor(cc::AbortReason r) const {
      return aborts_by_reason[static_cast<size_t>(r)].load();
    }
  };
  Stats& stats() { return stats_; }
  void ResetStats();

 private:
  friend class MethodCtx;

  /// Thrown to unwind an aborting method execution; caught at invocation
  /// boundaries and at the top level.
  struct AbortSignal {
    cc::AbortReason reason;
  };

  TxnResult RunAttempt(const std::string& name, const MethodFn& body);

  /// Runs `method` of `obj` as a child of `parent`; `po` is the message's
  /// program-order index (shared within a parallel batch).  `restore` is
  /// the node to re-register for this thread afterwards (nullptr on
  /// freshly-spawned threads).  Throws AbortSignal on child abort.
  Value InvokeChild(TxnNode& parent, Object& obj, const std::string& method,
                    Args args, uint32_t po, TxnNode* restore);

  /// Marks the subtree aborted (recorder included), rolls back its effects
  /// and informs the controller.
  void AbortSubtree(TxnNode& node, cc::AbortReason reason);

  const MethodFn* FindMethod(const Object& obj,
                             const std::string& method) const;

  void NoteThreadRunning(TxnNode* node);
  void NoteThreadFinished();

  ObjectBase& base_;
  ExecutorOptions options_;
  Recorder recorder_;
  std::unique_ptr<cc::Controller> controller_;
  cc::MixedController* mixed_ = nullptr;  // non-null iff protocol == kMixed
  bool supports_partial_abort_ = false;
  std::atomic<uint64_t> next_uid_{0};
  std::atomic<uint64_t> next_top_counter_{0};
  Stats stats_;
  std::map<std::pair<uint32_t, std::string>, MethodFn> methods_;
};

/// Handle passed to method bodies; all interaction with the object base
/// goes through it.
class MethodCtx {
 public:
  struct InvokeOutcome {
    bool ok = false;
    Value ret;
    cc::AbortReason reason = cc::AbortReason::kNone;
  };

  struct Call {
    std::string object;
    std::string method;
    Args args;
  };

  /// Sends a message: runs `method` on `object` as a child execution and
  /// returns its value.  A child abort propagates (aborting this execution
  /// too) — use TryInvoke to survive it.
  Value Invoke(const std::string& object, const std::string& method,
               Args args = {});

  /// Like Invoke, but under protocols that support partial aborts a child
  /// abort is reported instead of propagated — the paper's alternative-path
  /// pattern: "If M' fails and aborts, M is not also doomed to failure."
  InvokeOutcome TryInvoke(const std::string& object, const std::string& method,
                          Args args = {});

  /// Sends several messages simultaneously (internal parallelism); blocks
  /// until all children finish.  Under partial-abort protocols failed calls
  /// are reported in the outcomes; otherwise any failure aborts this
  /// execution after all branches joined.
  std::vector<InvokeOutcome> InvokeParallel(std::vector<Call> calls);

  /// Issues a local operation on this method's own object.  Only valid
  /// inside an object method (not in a top-level environment body).
  Value Local(const std::string& op, Args args = {});

  /// Application-requested abort of this method execution (Section 3).
  [[noreturn]] void Abort();

  /// Arguments the invoking message carried.
  const Args& args() const { return args_; }

  TxnNode& node() { return node_; }
  Executor& executor() { return exec_; }

 private:
  friend class Executor;
  MethodCtx(Executor& exec, TxnNode& node, Object* object, Args args)
      : exec_(exec), node_(node), object_(object), args_(std::move(args)) {}

  Executor& exec_;
  TxnNode& node_;
  Object* object_;  // nullptr for environment (top-level) bodies
  Args args_;
};

}  // namespace objectbase::rt

#endif  // OBJECTBASE_RUNTIME_EXECUTOR_H_
