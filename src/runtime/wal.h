// Write-ahead durability: redo logging with group commit.
//
// The paper's serialisability theory assumes committed transactions persist;
// this subsystem makes the runtime honour that.  Three pieces:
//
//   * WalWriter — a lock-free MPSC staging ring plus a dedicated writer
//     thread.  Controllers stage per-object REDO records (object id, journal
//     position, OpId, args, recorded ret) at apply time — the staging call
//     sits inside the same per-object critical section as the journal's
//     reserve-and-publish, so staged order per object is the true
//     application order.  The writer drains the published prefix, packs one
//     length-prefixed CRC32-checksummed frame per batch, issues ONE
//     write+fsync for the whole batch (the txfs batched-journal-commit
//     idiom) and release-publishes the durable watermark.  Commit
//     acknowledgement gates on the watermark (WaitDurable), so a group of
//     concurrent committers shares a single sync.
//
//   * Log format — a sequence of frames
//         [u32 magic 'OBWL'][u32 payload_len][u32 crc32(payload)][payload]
//     where the payload is a run of records (see WalRecord).  Frames are
//     all-or-nothing: a torn tail or bit flip fails the CRC and recovery
//     truncates at the FIRST damaged frame.  Because the watermark is only
//     published after fsync, no transaction in a dropped frame was ever
//     acknowledged.
//
//   * Recovery — ScanWal decodes the valid prefix; RecoverWalInto replays
//     the redo records of committed top-level transactions (minus aborted
//     subtrees: a kAbort record excises every redo whose ancestor chain
//     contains the aborted uid) per object in journal-position order onto a
//     freshly-initialised ObjectBase, re-checking each recorded return
//     value (step-level legality).  See docs/durability.md for the
//     soundness argument.
//
// Watermark soundness (why acknowledged implies consistent): a controller
// stages its commit marker BEFORE DependencyGraph::MarkCommitted, and any
// dependency successor can only pass ValidateAndWait after that, so the
// successor's marker always lands at a higher ring position.  The watermark
// is prefix-closed, hence a durable (acknowledged) transaction's entire
// predecessor closure is durable too — recovery can never resurrect a
// transaction whose predecessor was lost.
#ifndef OBJECTBASE_RUNTIME_WAL_H_
#define OBJECTBASE_RUNTIME_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/adt/adt.h"
#include "src/common/value.h"

namespace objectbase::cc {
class WaitsForGraph;
}  // namespace objectbase::cc

namespace objectbase::rt {

class ObjectBase;

/// When commit acknowledgement returns to the application.
enum class Durability {
  kNone,       ///< No logging at all (the PR-5 behaviour; zero overhead).
  kGroup,      ///< Ack after the batched group sync covering the commit.
  kPerCommit,  ///< Ack after an immediate sync (no accumulation window).
};

const char* DurabilityName(Durability d);

struct WalOptions {
  std::string path;
  Durability durability = Durability::kGroup;
  /// kGroup: accumulation window before each batch sync — larger windows
  /// amortise fsync over more commits at the cost of commit latency.
  uint32_t group_window_us = 100;
  /// Staging ring capacity (power of two).  Producers that outrun the
  /// writer by a full ring spin (bounded-memory backpressure).
  size_t ring_capacity = 1 << 14;
};

enum class WalRecordKind : uint8_t {
  kRedo = 1,    ///< One applied local step of some object.
  kCommit = 2,  ///< Top-level transaction committed.
  kAbort = 3,   ///< Subtree (under a still-live top) aborted.
};

/// Decoded log record (the scan/recovery view; staging uses an internal
/// shared-chain variant to keep the apply path copy-light).
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kRedo;
  uint32_t object_id = 0;
  /// Per-object replay order: the journal position for protocols that
  /// append to the applied journal, the staging ring position otherwise
  /// (both are assigned inside the object's apply critical section, so
  /// either is the true application order).
  uint64_t order_key = 0;
  uint64_t top_uid = 0;   ///< kRedo/kCommit: owning top-level uid.
  uint64_t exec_uid = 0;  ///< kRedo: issuing execution; kAbort: subtree root.
  adt::OpId op_id = 0;
  std::vector<uint64_t> chain;  ///< kRedo: issuing execution's self..top uids.
  Args args;
  Value ret;
};

/// The uid the durability wait names as its "holder" in the waits-for
/// graph.  Executor uids start at 1, so 0 can never be a real execution:
/// the wait is visible to the deadlock detector but can never close a
/// cycle (the writer thread never blocks on locks).
inline constexpr uint64_t kWalPseudoHolderUid = 0;

class WalWriter {
 public:
  /// Order-key sentinel: use the staging position itself (protocols that do
  /// not append to the applied journal).
  static constexpr uint64_t kOrderByStagePos = ~uint64_t{0};

  /// Opens (truncating) the log file and starts the writer thread.
  /// `ok()` is false if the file could not be opened.
  explicit WalWriter(WalOptions options);
  /// Drains everything staged, syncs, and joins the writer.
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  bool ok() const { return fd_ >= 0; }
  const WalOptions& options() const { return options_; }

  // --- staging (lock-free; called from transaction threads) ---------------

  /// Stages one applied step.  Call inside the object's apply critical
  /// section so per-object staging order is the application order.
  /// `order_key` is the journal position, or kOrderByStagePos to use the
  /// staging position.  Returns the staging position.
  uint64_t StageRedo(uint32_t object_id, uint64_t order_key, uint64_t top_uid,
                     uint64_t exec_uid,
                     std::shared_ptr<const std::vector<uint64_t>> chain,
                     adt::OpId op_id, const Args& args, const Value& ret);

  /// Stages the commit marker for a top-level transaction.  Stage BEFORE
  /// DependencyGraph::MarkCommitted (see the watermark-soundness note).
  /// `shard_mask`: 0 for a single-log commit; under a sharded topology a
  /// cross-shard top stages one marker per touched shard's log, each
  /// carrying the full touched-shard bitmask — recovery then treats the
  /// top as committed only if EVERY named log contains its marker (the
  /// cross-log atomicity rule; see RecoverShardedWalInto).  The mask rides
  /// the record's order_key field, unused by kCommit otherwise.
  uint64_t StageCommit(uint64_t top_uid, uint64_t shard_mask = 0);

  /// Stages a subtree-abort marker (partial aborts under a top that may
  /// still commit); recovery drops redo records of the subtree.
  uint64_t StageAbort(uint64_t subtree_root_uid);

  // --- commit gating -------------------------------------------------------

  /// Blocks until the watermark covers `pos` (i.e. the record staged at
  /// `pos` is on disk).  When `wf` is non-null the wait is declared in the
  /// waits-for graph under kWalPseudoHolderUid (PR 5's certifier-wait
  /// pattern), so composite wait states stay visible to the deadlock
  /// detector; the declaration itself can never report a deadlock.
  void WaitDurable(uint64_t pos, cc::WaitsForGraph* wf = nullptr,
                   uint64_t thread_key = 0);

  /// First staging position NOT yet durable (release-published after each
  /// batch sync).
  uint64_t DurableWatermark() const {
    return durable_.load(std::memory_order_acquire);
  }

  // --- observability -------------------------------------------------------

  uint64_t staged() const { return reserved_.load(std::memory_order_relaxed); }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
  uint64_t frames() const { return frames_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint64_t> turn{0};
    WalRecordKind kind = WalRecordKind::kRedo;
    uint32_t object_id = 0;
    uint64_t order_key = 0;
    uint64_t top_uid = 0;
    uint64_t exec_uid = 0;
    adt::OpId op_id = 0;
    std::shared_ptr<const std::vector<uint64_t>> chain;
    Args args;
    Value ret;
  };

  /// Claims the next ring position, spinning while the ring is full
  /// (bounded backpressure; the writer always makes progress).
  Slot& Claim(uint64_t* pos);
  void Publish(Slot& slot, uint64_t pos);

  void WriterLoop();
  /// Drains [drained_, reserved_) into one frame, writes, syncs, publishes
  /// the watermark and wakes commit waiters.
  void DrainAndSync();

  WalOptions options_;
  int fd_ = -1;
  size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;

  std::atomic<uint64_t> reserved_{0};  // next staging position
  uint64_t drained_ = 0;               // writer-private
  std::atomic<uint64_t> durable_{0};

  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> frames_{0};

  std::mutex writer_mu_;  // writer parking only — never on the stage path
  std::condition_variable writer_cv_;
  std::mutex waiter_mu_;
  std::condition_variable waiter_cv_;
  bool stop_ = false;
  std::vector<uint8_t> batch_buf_;  // writer-private serialization scratch
  std::thread writer_;
};

// --- scan / recovery --------------------------------------------------------

struct WalScanResult {
  bool ok = false;    ///< File was readable (an empty log is ok).
  bool torn = false;  ///< Stopped before end-of-file (damaged/torn frame).
  uint64_t valid_bytes = 0;
  uint64_t file_bytes = 0;
  size_t frames = 0;
  std::vector<WalRecord> records;
  std::vector<uint64_t> committed_tops;     ///< uids with a durable kCommit.
  std::vector<uint64_t> aborted_subtrees;   ///< uids from kAbort records.
};

/// Decodes the valid prefix of the log, truncating (in the result, not the
/// file) at the first torn or checksum-failing frame.  Never throws on
/// damaged input.
WalScanResult ScanWal(const std::string& path);

struct WalRecoveryResult {
  bool ok = false;
  bool torn = false;
  uint64_t valid_bytes = 0;
  size_t frames = 0;
  size_t committed_tops = 0;
  size_t applied = 0;               ///< Redo records replayed.
  size_t skipped_uncommitted = 0;   ///< Redos of tops without commit marker.
  size_t skipped_aborted = 0;       ///< Redos excised by kAbort records.
  size_t unknown_objects = 0;       ///< Redos naming no object in `base`.
  size_t ret_mismatches = 0;        ///< Replayed ret != recorded ret.
};

/// Replays the committed transactions of the log onto `base`, which must be
/// constructed exactly as it was at the start of the crashed run (same
/// objects, same initial states).  Per object, surviving redo records are
/// applied in order_key order; each recorded return value is re-checked
/// (ret_mismatches stays 0 iff the replay is step-level legal).  Touched
/// objects get their base state resynchronised (Object::SealRecoveredState),
/// so the rebuild/fold machinery starts from the recovered state.
WalRecoveryResult RecoverWalInto(const std::string& path, ObjectBase& base);

/// Log path of shard `shard` under base path `base_path`: the base path
/// itself for shard 0, `<base_path>.s<k>` otherwise — shard 0's log is the
/// classic single log, so shards=1 topologies are file-compatible with
/// unsharded runs.
std::string ShardWalPath(const std::string& base_path, uint32_t shard);

/// Sharded recovery: scans every shard's log and replays onto `base`.
/// A top-level transaction counts as committed iff
///   * some log holds its marker with mask 0 (single-shard commit), or
///   * for a masked marker, EVERY log named by the mask holds its marker
///     (a crash between the per-shard marker syncs of a cross-shard commit
///     must not surface a partial commit).
/// Aborted subtrees are the union over logs.  Redos replay per log
/// independently: objects are partitioned, so each object's redo records
/// live in exactly one shard's log and per-log order_key order is the true
/// per-object application order.  Aggregates the per-log counters.
WalRecoveryResult RecoverShardedWalInto(const std::string& base_path,
                                        uint32_t num_shards, ObjectBase& base);

/// CRC32 (IEEE 802.3, reflected); exposed for the torn-write tests.
uint32_t WalCrc32(const uint8_t* data, size_t n);

}  // namespace objectbase::rt

#endif  // OBJECTBASE_RUNTIME_WAL_H_
