#include "src/adt/counter_adt.h"

#include "src/adt/spec_base.h"

namespace objectbase::adt {
namespace {

class CounterState : public AdtState {
 public:
  explicit CounterState(int64_t v) : value(v) {}

  std::unique_ptr<AdtState> Clone() const override {
    return std::make_unique<CounterState>(value);
  }
  bool Equals(const AdtState& other) const override {
    auto* o = dynamic_cast<const CounterState*>(&other);
    return o != nullptr && o->value == value;
  }
  std::string ToString() const override {
    return "counter{" + std::to_string(value) + "}";
  }

  int64_t value;
};

class CounterSpec : public SpecBase {
 public:
  explicit CounterSpec(int64_t initial) : initial_(initial) {
    AddOp("get", /*read_only=*/true, [](AdtState& s, const Args&) {
      return ApplyResult{Value(static_cast<CounterState&>(s).value), UndoFn()};
    });
    AddOp("add", /*read_only=*/false, [](AdtState& s, const Args& args) {
      auto& st = static_cast<CounterState&>(s);
      int64_t d = args.at(0).AsInt();
      st.value += d;
      return ApplyResult{Value::None(), [d](AdtState& u) {
                           static_cast<CounterState&>(u).value -= d;
                         }};
    });
    // add/add commute; get/get commute; add/get conflict (the return value
    // of get depends on whether the add happened first).
    Conflict("get", "add");
  }

  std::string_view type_name() const override { return "counter"; }

  std::unique_ptr<AdtState> MakeInitialState() const override {
    return std::make_unique<CounterState>(initial_);
  }

 private:
  int64_t initial_;
};

}  // namespace

std::shared_ptr<const AdtSpec> MakeCounterSpec(int64_t initial) {
  return std::make_shared<CounterSpec>(initial);
}

}  // namespace objectbase::adt
