// Recorder unit tests: history structure, ordering guarantees, snapshot
// isolation, the disabled mode, and the leased sequence counter.
#include "src/runtime/recorder.h"

#include <gtest/gtest.h>

#include <set>

#include "src/adt/counter_adt.h"
#include "src/adt/register_adt.h"
#include "src/model/legality.h"

namespace objectbase::rt {
namespace {

adt::OpId OpIdOf(const std::shared_ptr<const adt::AdtSpec>& spec,
                 const char* name) {
  const adt::OpDescriptor* op = spec->FindOp(name);
  EXPECT_NE(op, nullptr);
  return op->id;
}

TEST(RecorderTest, DisabledRecorderIsCheap) {
  Recorder r(/*enabled=*/false);
  ObjectBase base;
  auto spec = adt::MakeCounterSpec(0);
  base.CreateObject("c", spec);
  r.Reset(base);
  model::ExecId e = r.BeginExecution(model::kNoExec,
                                     model::kEnvironmentObject, "t");
  EXPECT_EQ(e, model::kNoExec);
  r.RecordLocalStep(e, 0, 0, OpIdOf(spec, "add"), {Value(1)}, Value::None(),
                    /*order_key=*/1, /*seq=*/2);
  model::History h = r.Snapshot();
  EXPECT_TRUE(h.executions.empty());
  EXPECT_TRUE(h.steps.empty());
  // Disabled recording draws no stamps at all (the per-object order keys
  // the runtime needs for undo ordering come from the journal/object, not
  // from here).
  EXPECT_EQ(r.NextSeq(), 0u);
}

TEST(RecorderTest, ResetSnapshotsInitialStates) {
  Recorder r(/*enabled=*/true);
  ObjectBase base;
  base.CreateObject("a", adt::MakeRegisterSpec(7));
  base.CreateObject("b", adt::MakeCounterSpec(3));
  r.Reset(base);
  model::History h = r.Snapshot();
  ASSERT_EQ(h.num_objects(), 2u);
  EXPECT_EQ(h.object_names[0], "a");
  EXPECT_TRUE(h.initial_states[0]->Equals(
      *adt::MakeRegisterSpec(7)->MakeInitialState()));
  EXPECT_TRUE(h.initial_states[1]->Equals(
      *adt::MakeCounterSpec(3)->MakeInitialState()));
}

TEST(RecorderTest, RecordsTreeAndSteps) {
  Recorder r(/*enabled=*/true);
  ObjectBase base;
  auto spec = adt::MakeCounterSpec(0);
  base.CreateObject("c", spec);
  r.Reset(base);
  model::ExecId top = r.BeginExecution(model::kNoExec,
                                       model::kEnvironmentObject, "t");
  model::ExecId child = r.BeginExecution(top, 0, "m");
  uint64_t m_start = r.NextSeq();
  uint64_t s1 = r.NextSeq();
  r.RecordLocalStep(child, 0, 0, OpIdOf(spec, "add"), {Value(5)},
                    Value::None(), /*order_key=*/1, s1);
  uint64_t m_end = r.NextSeq();
  r.RecordMessageStep(top, 0, child, m_start, m_end);
  r.MarkAborted(child);

  model::History h = r.Snapshot();
  ASSERT_EQ(h.executions.size(), 2u);
  EXPECT_EQ(h.executions[child].parent, top);
  EXPECT_TRUE(h.executions[child].aborted);
  ASSERT_EQ(h.steps.size(), 2u);
  EXPECT_EQ(h.object_order[0].size(), 1u);
  const model::Step& local = h.steps[h.object_order[0][0]];
  // Op names are resolved from the spec at Snapshot() time.
  EXPECT_EQ(local.op, "add");
  EXPECT_EQ(local.exec, child);
  // Message step carries B, and brackets the local step's stamp.
  bool found_message = false;
  for (const model::Step& s : h.steps) {
    if (s.kind == model::StepKind::kMessage) {
      EXPECT_EQ(s.callee, child);
      EXPECT_LT(s.start_seq, local.start_seq);
      EXPECT_GT(s.end_seq, local.end_seq);
      found_message = true;
    }
  }
  EXPECT_TRUE(found_message);
}

TEST(RecorderTest, SnapshotIsIsolatedFromLaterRecording) {
  Recorder r(/*enabled=*/true);
  ObjectBase base;
  auto spec = adt::MakeCounterSpec(0);
  base.CreateObject("c", spec);
  r.Reset(base);
  model::ExecId top = r.BeginExecution(model::kNoExec,
                                       model::kEnvironmentObject, "t");
  model::History before = r.Snapshot();
  model::ExecId child = r.BeginExecution(top, 0, "m");
  uint64_t s = r.NextSeq();
  r.RecordLocalStep(child, 0, 0, OpIdOf(spec, "add"), {Value(1)},
                    Value::None(), /*order_key=*/1, s);
  EXPECT_EQ(before.executions.size(), 1u);
  EXPECT_EQ(before.steps.size(), 0u);
  EXPECT_EQ(r.Snapshot().steps.size(), 1u);
}

TEST(RecorderTest, ResetClearsPreviousHistory) {
  Recorder r(/*enabled=*/true);
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  r.Reset(base);
  r.BeginExecution(model::kNoExec, model::kEnvironmentObject, "t");
  r.Reset(base);
  EXPECT_TRUE(r.Snapshot().executions.empty());
}

TEST(RecorderTest, SequenceIsMonotonePerThread) {
  Recorder r(/*enabled=*/true);
  uint64_t last = 0;
  // Cross at least one lease refill boundary.
  for (uint64_t i = 0; i < 3 * Recorder::kSeqLease + 7; ++i) {
    uint64_t s = r.NextSeq();
    EXPECT_GT(s, last);
    last = s;
  }
}

TEST(RecorderTest, ResetRestartsLeasedStampsAtOne) {
  Recorder r(/*enabled=*/true);
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  r.Reset(base);
  EXPECT_EQ(r.NextSeq(), 1u);
  r.NextSeq();
  // Reset invalidates the thread's outstanding lease (epoch bump), so a
  // fresh run's stamps start from 1 again — single-thread runs stay
  // byte-identical across repetitions.
  r.Reset(base);
  EXPECT_EQ(r.NextSeq(), 1u);
}

TEST(RecorderTest, LeaseRefillsAreCountedAndBounded) {
  Recorder r(/*enabled=*/true);
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  r.Reset(base);
  const uint64_t before = RecorderSeqRmws().load();
  const uint64_t kDraws = 4 * Recorder::kSeqLease;
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < kDraws; ++i) seen.insert(r.NextSeq());
  EXPECT_EQ(seen.size(), kDraws);  // unique stamps
  const uint64_t rmws = RecorderSeqRmws().load() - before;
  // Single thread, no contention: exactly one global RMW per lease.
  EXPECT_EQ(rmws, kDraws / Recorder::kSeqLease);
}

}  // namespace
}  // namespace objectbase::rt
