// Tests for the History structure: ancestry, lca, levels, replay and the
// Theorem 1 property (any conflict-consistent order replays to the same
// final state).
#include "src/model/history.h"

#include <gtest/gtest.h>

#include "src/adt/counter_adt.h"
#include "src/adt/register_adt.h"
#include "src/adt/set_adt.h"
#include "src/model/replay.h"
#include "tests/history_builder.h"

namespace objectbase::model {
namespace {

TEST(HistoryTest, AncestryAndLevels) {
  HistoryBuilder b;
  ObjectId obj = b.AddObject("o", adt::MakeCounterSpec());
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.Child(t1, obj, "m1");
  ExecId g1 = b.Child(c1, obj, "m2");
  ExecId t2 = b.Top("T2");
  History h = b.Build();

  EXPECT_TRUE(h.IsAncestorOrSelf(t1, t1));
  EXPECT_TRUE(h.IsAncestorOrSelf(t1, c1));
  EXPECT_TRUE(h.IsAncestorOrSelf(t1, g1));
  EXPECT_FALSE(h.IsAncestorOrSelf(c1, t1));
  EXPECT_FALSE(h.IsAncestorOrSelf(t1, t2));

  EXPECT_FALSE(h.Incomparable(t1, g1));
  EXPECT_TRUE(h.Incomparable(t1, t2));
  EXPECT_TRUE(h.Incomparable(g1, t2));

  EXPECT_EQ(h.Level(t1), 0);
  EXPECT_EQ(h.Level(c1), 1);
  EXPECT_EQ(h.Level(g1), 2);

  EXPECT_EQ(h.TopAncestor(g1), t1);
  EXPECT_EQ(h.TopAncestor(t2), t2);
  EXPECT_EQ(h.TopLevel().size(), 2u);
}

TEST(HistoryTest, LcaWithinAndAcrossTrees) {
  HistoryBuilder b;
  ObjectId obj = b.AddObject("o", adt::MakeCounterSpec());
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.Child(t1, obj, "a");
  ExecId c2 = b.Child(t1, obj, "b");
  ExecId g1 = b.Child(c1, obj, "c");
  ExecId t2 = b.Top("T2");
  History h = b.Build();

  EXPECT_EQ(h.Lca(c1, c2), t1);
  EXPECT_EQ(h.Lca(g1, c2), t1);
  EXPECT_EQ(h.Lca(g1, c1), c1);
  EXPECT_EQ(h.Lca(t1, t2), kNoExec);
  EXPECT_EQ(h.Lca(g1, t2), kNoExec);
}

TEST(HistoryTest, EffectivelyAbortedClosesOverAncestors) {
  HistoryBuilder b;
  ObjectId obj = b.AddObject("o", adt::MakeCounterSpec());
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.Child(t1, obj, "a");
  ExecId g1 = b.Child(c1, obj, "b");
  b.MarkAborted(c1);
  History h = b.Build();
  EXPECT_FALSE(h.EffectivelyAborted(t1));
  EXPECT_TRUE(h.EffectivelyAborted(c1));
  EXPECT_TRUE(h.EffectivelyAborted(g1));  // descendent of an aborted exec
}

TEST(HistoryTest, CloneIsDeep) {
  HistoryBuilder b;
  ObjectId obj = b.AddObject("o", adt::MakeCounterSpec());
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.Child(t1, obj, "m");
  b.Local(c1, obj, "add", {5});
  History h = b.Build();
  History copy = h.Clone();
  EXPECT_EQ(copy.executions.size(), h.executions.size());
  EXPECT_EQ(copy.steps.size(), h.steps.size());
  EXPECT_NE(copy.initial_states[0].get(), h.initial_states[0].get());
  EXPECT_TRUE(copy.initial_states[0]->Equals(*h.initial_states[0]));
}

TEST(ReplayTest, ReplaysToRecordedReturns) {
  HistoryBuilder b;
  ObjectId obj = b.AddObject("o", adt::MakeRegisterSpec(10));
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.Child(t1, obj, "m");
  b.Local(c1, obj, "write", {42});
  EXPECT_EQ(b.Local(c1, obj, "read"), Value(42));
  History h = b.Build();
  ReplayResult r = Replay(h, /*committed_only=*/false);
  ASSERT_TRUE(r.ok) << r.error;
  // Final state must reflect the write.
  auto final_expected = adt::MakeRegisterSpec(42)->MakeInitialState();
  EXPECT_TRUE(r.final_states[obj]->Equals(*final_expected));
}

TEST(ReplayTest, DetectsForgedReturn) {
  HistoryBuilder b;
  ObjectId obj = b.AddObject("o", adt::MakeRegisterSpec(10));
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.Child(t1, obj, "m");
  b.LocalRaw(c1, obj, "read", {}, Value(999));  // register holds 10
  History h = b.Build();
  ReplayResult r = Replay(h, /*committed_only=*/false);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("divergence"), std::string::npos);
}

TEST(ReplayTest, CommittedProjectionSkipsAborted) {
  HistoryBuilder b;
  ObjectId obj = b.AddObject("o", adt::MakeCounterSpec(0));
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.Child(t1, obj, "m");
  b.Local(c1, obj, "add", {100});
  ExecId t2 = b.Top("T2");
  ExecId c2 = b.Child(t2, obj, "m");
  b.Local(c2, obj, "add", {1});
  b.MarkAborted(t1);
  History h = b.Build();
  ReplayResult all = Replay(h, /*committed_only=*/false);
  ReplayResult committed = Replay(h, /*committed_only=*/true);
  ASSERT_TRUE(all.ok);
  ASSERT_TRUE(committed.ok);
  EXPECT_TRUE(
      committed.final_states[obj]->Equals(
          *adt::MakeCounterSpec(1)->MakeInitialState()));
  EXPECT_TRUE(all.final_states[obj]->Equals(
      *adt::MakeCounterSpec(101)->MakeInitialState()));
}

TEST(ReplayTest, Theorem1AnyConflictConsistentOrderSameState) {
  // Two transactions adding to a counter (adds commute): swapping their
  // steps is conflict-consistent and must reach the same final state with
  // the same returns (Theorem 1 / Lemma 2).
  HistoryBuilder b;
  ObjectId obj = b.AddObject("o", adt::MakeCounterSpec(0));
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.Child(t1, obj, "m");
  ExecId t2 = b.Top("T2");
  ExecId c2 = b.Child(t2, obj, "m");
  b.Local(c1, obj, "add", {5});
  b.Local(c2, obj, "add", {7});
  b.Local(c1, obj, "add", {11});
  History h = b.Build();

  ReplayResult original = Replay(h, false);
  ASSERT_TRUE(original.ok);

  // Swap the commuting adds.
  std::vector<std::vector<StepId>> permuted = h.object_order;
  std::swap(permuted[obj][0], permuted[obj][1]);
  ReplayResult swapped = Replay(h, false, &permuted);
  ASSERT_TRUE(swapped.ok) << swapped.error;
  EXPECT_TRUE(FinalStatesEqual(original.final_states, swapped.final_states));
}

TEST(ReplayTest, NonConflictConsistentOrderFailsLegality) {
  // A read reordered across a write is NOT conflict-consistent: the replay
  // must detect the return-value divergence.
  HistoryBuilder b;
  ObjectId obj = b.AddObject("o", adt::MakeRegisterSpec(0));
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.Child(t1, obj, "m");
  ExecId t2 = b.Top("T2");
  ExecId c2 = b.Child(t2, obj, "m");
  b.Local(c1, obj, "write", {1});
  EXPECT_EQ(b.Local(c2, obj, "read"), Value(1));
  History h = b.Build();

  std::vector<std::vector<StepId>> permuted = h.object_order;
  std::swap(permuted[obj][0], permuted[obj][1]);
  ReplayResult r = Replay(h, false, &permuted);
  EXPECT_FALSE(r.ok);
}

TEST(HistoryTest, StepConflictsUsesSpecAndObject) {
  HistoryBuilder b;
  ObjectId s = b.AddObject("set", adt::MakeSetSpec());
  ObjectId c = b.AddObject("ctr", adt::MakeCounterSpec());
  ExecId t1 = b.Top("T1");
  ExecId e1 = b.Child(t1, s, "m");
  ExecId e2 = b.Child(t1, c, "m");
  b.Local(e1, s, "insert", {1});
  b.Local(e2, c, "add", {1});
  History h = b.Build();
  const Step& ins = h.steps[h.object_order[s][0]];
  const Step& add = h.steps[h.object_order[c][0]];
  // Different objects never conflict.
  EXPECT_FALSE(h.StepConflicts(ins, add));
  EXPECT_FALSE(h.StepConflicts(add, ins));
}

}  // namespace
}  // namespace objectbase::model
