#include "src/workload/spec.h"

namespace objectbase::workload {

void SpinWork(int iters) {
  volatile uint64_t sink = 0;
  for (int i = 0; i < iters; ++i) sink = sink + i;
}

}  // namespace objectbase::workload
