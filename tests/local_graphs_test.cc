// Definition 10 / Theorem 5 tests: SG_local, SG_mesg and the ->_e relation.
#include "src/model/local_graphs.h"

#include <gtest/gtest.h>

#include "src/adt/counter_adt.h"
#include "src/adt/register_adt.h"
#include "tests/history_builder.h"

namespace objectbase::model {
namespace {

TEST(LocalGraphsTest, LocalEdgesStayWithinObject) {
  HistoryBuilder b;
  ObjectId a = b.AddObject("A", adt::MakeRegisterSpec(0));
  ExecId t1 = b.Top("T1");
  ExecId e1 = b.Child(t1, a, "m");
  ExecId t2 = b.Top("T2");
  ExecId e2 = b.Child(t2, a, "m");
  b.Local(e1, a, "write", {1});
  b.Local(e2, a, "write", {2});
  History h = b.Build();
  LocalGraphs g = BuildLocalGraphs(h);
  // SG_local(A): edge e1 -> e2 between A's own method executions.
  EXPECT_TRUE(g.local.at(a).HasEdge(e1, e2));
  // SG_mesg(environment): lifted edge t1 -> t2.
  EXPECT_TRUE(g.mesg.at(kEnvironmentObject).HasEdge(t1, t2));
  // And no local edges at the environment (it has no local steps).
  EXPECT_EQ(g.local.at(kEnvironmentObject).EdgeCount(), 0u);
}

TEST(LocalGraphsTest, Section2ExampleFailsConditionA) {
  // Intra-object orders are each acyclic, but the lifted SG_mesg at the
  // environment is cyclic: exactly the situation Theorem 5 condition (a)
  // rejects.
  HistoryBuilder b;
  ObjectId a = b.AddObject("A", adt::MakeRegisterSpec(0));
  ObjectId bb = b.AddObject("B", adt::MakeRegisterSpec(0));
  ExecId t1 = b.Top("T1");
  ExecId t2 = b.Top("T2");
  b.Local(b.Child(t1, a, "m"), a, "write", {1});
  b.Local(b.Child(t2, a, "m"), a, "write", {2});
  b.Local(b.Child(t2, bb, "m"), bb, "write", {2});
  b.Local(b.Child(t1, bb, "m"), bb, "write", {1});
  History h = b.Build();
  LocalGraphs g = BuildLocalGraphs(h);
  EXPECT_TRUE(g.local.at(a).IsAcyclic());
  EXPECT_TRUE(g.local.at(bb).IsAcyclic());
  Digraph u = g.local.at(kEnvironmentObject);
  u.UnionWith(g.mesg.at(kEnvironmentObject));
  EXPECT_FALSE(u.IsAcyclic());

  Theorem5Result r = CheckTheorem5(h);
  EXPECT_FALSE(r.holds);
  EXPECT_NE(r.detail.find("condition (a)"), std::string::npos);
}

TEST(LocalGraphsTest, CleanHistorySatisfiesTheorem5) {
  HistoryBuilder b;
  ObjectId a = b.AddObject("A", adt::MakeRegisterSpec(0));
  ObjectId bb = b.AddObject("B", adt::MakeRegisterSpec(0));
  ExecId t1 = b.Top("T1");
  ExecId t2 = b.Top("T2");
  // T1 before T2 at both objects: compatible serialisation orders.
  b.Local(b.Child(t1, a, "m"), a, "write", {1});
  b.Local(b.Child(t1, bb, "m"), bb, "write", {1});
  b.Local(b.Child(t2, a, "m"), a, "write", {2});
  b.Local(b.Child(t2, bb, "m"), bb, "write", {2});
  History h = b.Build();
  Theorem5Result r = CheckTheorem5(h);
  EXPECT_TRUE(r.holds) << r.detail;
}

TEST(LocalGraphsTest, ConditionBParallelMessagesConflictBothWays) {
  // One parent sends two PARALLEL messages whose subtrees conflict in both
  // directions on two further objects: every per-object graph is acyclic
  // (condition (a) holds) yet ->_e at the parent has a cycle — the exact
  // situation condition (b) exists to reject ("two concurrent messages may
  // result in two pairs of conflicting steps, each pair requiring the
  // serialisation of the concurrent messages in the opposite order").
  HistoryBuilder b;
  ObjectId a = b.AddObject("A", adt::MakeRegisterSpec(0));
  ObjectId c = b.AddObject("C", adt::MakeRegisterSpec(0));
  ObjectId x = b.AddObject("X", adt::MakeRegisterSpec(0));
  ObjectId y = b.AddObject("Y", adt::MakeRegisterSpec(0));
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.ChildAt(t1, a, "m1", 0);  // parallel batch: shared po
  ExecId c2 = b.ChildAt(t1, c, "m2", 0);
  ExecId c1x = b.ChildAt(c1, x, "nx", 0);
  ExecId c1y = b.ChildAt(c1, y, "ny", 0);
  ExecId c2x = b.ChildAt(c2, x, "nx", 0);
  ExecId c2y = b.ChildAt(c2, y, "ny", 0);
  b.Local(c1x, x, "write", {1});  // X: c1's side first
  b.Local(c2x, x, "write", {2});
  b.Local(c2y, y, "write", {2});  // Y: c2's side first
  b.Local(c1y, y, "write", {1});
  History h = b.Build();
  // Per-object graphs are fine...
  LocalGraphs g = BuildLocalGraphs(h);
  for (auto& [obj, local] : g.local) {
    Digraph u = local;
    u.UnionWith(g.mesg.at(obj));
    EXPECT_TRUE(u.IsAcyclic());
  }
  // ...but condition (b) fails at the parent.
  Theorem5Result r = CheckTheorem5(h);
  EXPECT_FALSE(r.holds);
  EXPECT_NE(r.detail.find("condition (b)"), std::string::npos);
}

TEST(LocalGraphsTest, SequentialMessagesSatisfyConditionB) {
  HistoryBuilder b;
  ObjectId a = b.AddObject("A", adt::MakeRegisterSpec(0));
  ExecId t1 = b.Top("T1");
  ExecId c1 = b.Child(t1, a, "m1");
  b.Local(c1, a, "write", {1});
  ExecId c2 = b.Child(t1, a, "m2");
  b.Local(c2, a, "write", {2});
  History h = b.Build();
  Theorem5Result r = CheckTheorem5(h);
  EXPECT_TRUE(r.holds) << r.detail;
}

TEST(LocalGraphsTest, CommittedProjectionIgnoresAbortedConflicts) {
  HistoryBuilder b;
  ObjectId a = b.AddObject("A", adt::MakeRegisterSpec(0));
  ObjectId bb = b.AddObject("B", adt::MakeRegisterSpec(0));
  ExecId t1 = b.Top("T1");
  ExecId t2 = b.Top("T2");
  b.Local(b.Child(t1, a, "m"), a, "write", {1});
  b.Local(b.Child(t2, a, "m"), a, "write", {2});
  b.Local(b.Child(t2, bb, "m"), bb, "write", {2});
  b.Local(b.Child(t1, bb, "m"), bb, "write", {1});
  b.MarkAborted(t2);
  History h = b.Build();
  EXPECT_TRUE(CheckTheorem5(h, /*committed_only=*/true).holds);
  EXPECT_FALSE(CheckTheorem5(h, /*committed_only=*/false).holds);
}

}  // namespace
}  // namespace objectbase::model
