// Executor basics, protocol-independent: invocation, nesting, implicit
// methods, parallel batches, recording, history well-formedness.
#include "src/runtime/executor.h"

#include <gtest/gtest.h>

#include "src/adt/bank_account_adt.h"
#include "src/adt/counter_adt.h"
#include "src/adt/register_adt.h"
#include "src/model/legality.h"
#include "src/model/serialiser.h"

namespace objectbase::rt {
namespace {

class ExecutorBasicTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ExecutorBasicTest, SingleTransactionImplicitMethods) {
  ObjectBase base;
  base.CreateObject("acct", adt::MakeBankAccountSpec(100));
  Executor exec(base, {.protocol = GetParam()});
  TxnResult r = exec.RunTransaction("t", [](MethodCtx& txn) {
    Value ok = txn.Invoke("acct", "withdraw", {30});
    EXPECT_EQ(ok, Value(true));
    return txn.Invoke("acct", "balance");
  });
  ASSERT_TRUE(r.committed);
  EXPECT_EQ(r.ret, Value(70));
}

TEST_P(ExecutorBasicTest, RegisteredMethodsNestAndReturn) {
  ObjectBase base;
  base.CreateObject("acct", adt::MakeBankAccountSpec(100));
  base.CreateObject("log", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = GetParam()});
  // A method of "acct" that performs local steps AND messages another
  // object — the Section 1 shape (methods send messages to other objects).
  ASSERT_TRUE(exec.DefineMethod("acct", "audited_withdraw", [](MethodCtx& m) -> Value {
    Value ok = m.Local("withdraw", m.args());
    m.Invoke("log", "add", {1});
    return ok;
  }));
  TxnResult r = exec.RunTransaction("t", [](MethodCtx& txn) {
    return txn.Invoke("acct", "audited_withdraw", {25});
  });
  ASSERT_TRUE(r.committed);
  EXPECT_EQ(r.ret, Value(true));
  TxnResult check = exec.RunTransaction("check", [](MethodCtx& txn) {
    EXPECT_EQ(txn.Invoke("log", "get"), Value(1));
    return txn.Invoke("acct", "balance");
  });
  EXPECT_EQ(check.ret, Value(75));
}

TEST_P(ExecutorBasicTest, ParallelBatchRunsAllBranches) {
  ObjectBase base;
  base.CreateObject("c0", adt::MakeCounterSpec(0));
  base.CreateObject("c1", adt::MakeCounterSpec(0));
  base.CreateObject("c2", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = GetParam()});
  TxnResult r = exec.RunTransaction("t", [](MethodCtx& txn) {
    auto outcomes = txn.InvokeParallel({
        {"c0", "add", {1}},
        {"c1", "add", {2}},
        {"c2", "add", {3}},
    });
    EXPECT_EQ(outcomes.size(), 3u);
    for (const auto& o : outcomes) EXPECT_TRUE(o.ok);
    int64_t sum = 0;
    sum += txn.Invoke("c0", "get").AsInt();
    sum += txn.Invoke("c1", "get").AsInt();
    sum += txn.Invoke("c2", "get").AsInt();
    return Value(sum);
  });
  ASSERT_TRUE(r.committed);
  EXPECT_EQ(r.ret, Value(6));
}

TEST_P(ExecutorBasicTest, RecordedHistoryIsLegalAndSerialisable) {
  ObjectBase base;
  base.CreateObject("a", adt::MakeRegisterSpec(0));
  base.CreateObject("b", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = GetParam()});
  for (int i = 0; i < 5; ++i) {
    exec.RunTransaction("t", [i](MethodCtx& txn) {
      txn.Invoke("a", "write", {i});
      txn.Invoke("b", "add", {i});
      return txn.Invoke("a", "read");
    });
  }
  model::History h = exec.recorder().Snapshot();
  EXPECT_EQ(h.TopLevel().size(), 5u);
  model::LegalityResult legal = model::CheckLegal(h, /*committed_only=*/true);
  EXPECT_TRUE(legal.legal) << legal.error;
  model::SerialisabilityCheck check = model::CheckSerialisable(h);
  EXPECT_TRUE(check.serialisable) << check.detail;
}

TEST_P(ExecutorBasicTest, UnknownObjectOrMethodAborts) {
  ObjectBase base;
  base.CreateObject("a", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = GetParam(), .max_top_retries = 2});
  TxnResult r1 = exec.RunTransaction("t", [](MethodCtx& txn) {
    return txn.Invoke("nonexistent", "read");
  });
  EXPECT_FALSE(r1.committed);
  TxnResult r2 = exec.RunTransaction("t", [](MethodCtx& txn) {
    return txn.Invoke("a", "frobnicate");
  });
  EXPECT_FALSE(r2.committed);
  EXPECT_EQ(r2.last_abort, cc::AbortReason::kUser);
}

TEST_P(ExecutorBasicTest, EnvironmentHasNoLocalSteps) {
  ObjectBase base;
  base.CreateObject("a", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = GetParam(), .max_top_retries = 1});
  TxnResult r = exec.RunTransaction("t", [](MethodCtx& txn) {
    return txn.Local("read");  // invalid at top level
  });
  EXPECT_FALSE(r.committed);
}

TEST_P(ExecutorBasicTest, StatsCountCommits) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = GetParam()});
  for (int i = 0; i < 7; ++i) {
    exec.RunTransaction("t", [](MethodCtx& txn) {
      return txn.Invoke("c", "add", {1});
    });
  }
  EXPECT_EQ(exec.stats().committed.load(), 7u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ExecutorBasicTest,
    ::testing::Values(Protocol::kN2pl, Protocol::kNto, Protocol::kCert,
                      Protocol::kGemstone, Protocol::kMixed),
    [](const ::testing::TestParamInfo<Protocol>& info) {
      return ProtocolName(info.param);
    });

TEST(ExecutorTest, HierarchicalTimestampsFollowRule2) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = Protocol::kNto});
  std::vector<cc::Hts> child_ts;
  ASSERT_TRUE(exec.DefineMethod("c", "noop", [](MethodCtx& m) -> Value {
    (void)m;
    return Value();
  }));
  exec.RunTransaction("t", [&](MethodCtx& txn) {
    txn.Invoke("c", "noop");
    txn.Invoke("c", "noop");
    return Value();
  });
  model::History h = exec.recorder().Snapshot();
  // Two sequential messages: type (b) edges exist, and the recorded
  // executions are in creation order.
  model::Digraph sg = model::BuildSerialisationGraph(h);
  ASSERT_EQ(h.executions.size(), 3u);
  EXPECT_TRUE(sg.HasEdge(1, 2));
}

}  // namespace
}  // namespace objectbase::rt
