// WaitsForGraph unit tests: thread registry, serving-thread resolution
// through the execution tree, and cycle detection.
#include "src/cc/waits_for.h"

#include <gtest/gtest.h>

#include "src/runtime/txn.h"

namespace objectbase::cc {
namespace {

TEST(WaitsForTest, NoCycleWithoutWaits) {
  WaitsForGraph wfg;
  rt::TxnNode t1(1, nullptr, UINT32_MAX, "T1");
  wfg.SetRunning(100, &t1);
  EXPECT_FALSE(wfg.SetWaitingWouldDeadlock(100, {999}));
  EXPECT_EQ(wfg.BlockedCount(), 1u);
  wfg.ClearWaiting(100);
  EXPECT_EQ(wfg.BlockedCount(), 0u);
}

TEST(WaitsForTest, DirectTwoThreadCycle) {
  WaitsForGraph wfg;
  rt::TxnNode t1(1, nullptr, UINT32_MAX, "T1");
  rt::TxnNode t2(2, nullptr, UINT32_MAX, "T2");
  wfg.SetRunning(100, &t1);
  wfg.SetRunning(200, &t2);
  // Thread 100 waits for exec 2 (served by thread 200): no cycle yet.
  EXPECT_FALSE(wfg.SetWaitingWouldDeadlock(100, {2}));
  // Thread 200 waiting for exec 1 (served by thread 100, which is blocked)
  // closes the cycle.
  EXPECT_TRUE(wfg.SetWaitingWouldDeadlock(200, {1}));
  // The refused wait was not registered.
  EXPECT_EQ(wfg.BlockedCount(), 1u);
}

TEST(WaitsForTest, ThreeThreadCycle) {
  WaitsForGraph wfg;
  rt::TxnNode a(1, nullptr, UINT32_MAX, "A");
  rt::TxnNode b(2, nullptr, UINT32_MAX, "B");
  rt::TxnNode c(3, nullptr, UINT32_MAX, "C");
  wfg.SetRunning(10, &a);
  wfg.SetRunning(20, &b);
  wfg.SetRunning(30, &c);
  EXPECT_FALSE(wfg.SetWaitingWouldDeadlock(10, {2}));
  EXPECT_FALSE(wfg.SetWaitingWouldDeadlock(20, {3}));
  EXPECT_TRUE(wfg.SetWaitingWouldDeadlock(30, {1}));
}

TEST(WaitsForTest, HolderServedByDescendantThread) {
  // A lock owned by a PARENT execution is served by the thread running its
  // child (rule 5: the child's completion moves things along).
  WaitsForGraph wfg;
  rt::TxnNode parent(1, nullptr, UINT32_MAX, "P");
  rt::TxnNode child(2, &parent, 0, "c");
  rt::TxnNode other(3, nullptr, UINT32_MAX, "O");
  wfg.SetRunning(10, &child);  // thread 10 runs the child
  wfg.SetRunning(20, &other);
  // Thread 20 waits for exec 1 (the parent).  Thread 10 serves it (runs a
  // descendant), and thread 10 is not blocked: no deadlock.
  EXPECT_FALSE(wfg.SetWaitingWouldDeadlock(20, {1}));
  // Now thread 10 waits for exec 3: cycle through the descendant.
  EXPECT_TRUE(wfg.SetWaitingWouldDeadlock(10, {3}));
}

TEST(WaitsForTest, SiblingWaitIsNotADeadlock) {
  // One thread running a sibling that holds the lock, but that thread is
  // NOT blocked: the sibling will finish, inherit the lock upward, and the
  // waiter proceeds.
  WaitsForGraph wfg;
  rt::TxnNode top(1, nullptr, UINT32_MAX, "T");
  rt::TxnNode s1(2, &top, 0, "s1");
  rt::TxnNode s2(3, &top, 0, "s2");
  wfg.SetRunning(10, &s1);
  wfg.SetRunning(20, &s2);
  EXPECT_FALSE(wfg.SetWaitingWouldDeadlock(10, {3}));  // s1 waits for s2
}

TEST(WaitsForTest, ClearRunningDropsWaits) {
  WaitsForGraph wfg;
  rt::TxnNode t1(1, nullptr, UINT32_MAX, "T1");
  wfg.SetRunning(100, &t1);
  EXPECT_FALSE(wfg.SetWaitingWouldDeadlock(100, {2}));
  wfg.ClearRunning(100);
  EXPECT_EQ(wfg.BlockedCount(), 0u);
}

TEST(WaitsForTest, ReRegistrationReplacesNode) {
  WaitsForGraph wfg;
  rt::TxnNode t1(1, nullptr, UINT32_MAX, "T1");
  rt::TxnNode t2(2, nullptr, UINT32_MAX, "T2");
  wfg.SetRunning(100, &t1);
  wfg.SetRunning(100, &t2);  // thread now runs t2
  rt::TxnNode waiter(3, nullptr, UINT32_MAX, "W");
  wfg.SetRunning(200, &waiter);
  // Thread 200 waits for exec 1 — no longer served by anyone: no cycle and
  // also no serving thread (the lock must have been released; the re-check
  // loop will discover that).
  EXPECT_FALSE(wfg.SetWaitingWouldDeadlock(200, {1}));
}

}  // namespace
}  // namespace objectbase::cc
