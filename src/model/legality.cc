#include "src/model/legality.h"

#include <map>
#include <set>
#include <sstream>

#include "src/model/replay.h"

namespace objectbase::model {
namespace {

std::string Err(const std::string& msg) { return msg; }

}  // namespace

LegalityResult CheckLegal(const History& h, bool committed_only) {
  LegalityResult r;

  // --- Condition 1: B is 1-1, ancestry is acyclic, top-level executions
  // belong to the environment. ---
  std::map<ExecId, int> invocation_count;
  for (const Step& s : h.steps) {
    if (s.kind != StepKind::kMessage) continue;
    if (s.callee == kNoExec || s.callee >= h.executions.size()) {
      r.error = Err("message step with missing callee");
      return r;
    }
    invocation_count[s.callee]++;
    if (invocation_count[s.callee] > 1) {
      r.error = Err("B is not 1-1: execution invoked by two messages");
      return r;
    }
    if (h.executions[s.callee].parent != s.exec) {
      r.error = Err("B inconsistent with parent pointers");
      return r;
    }
  }
  for (const MethodExecution& e : h.executions) {
    if (e.parent == kNoExec) {
      if (e.object != kEnvironmentObject) {
        // Top-level method executions are methods of the environment in the
        // paper.  Our runtime's top-level transactions are environment
        // methods; objects' executions always have a parent.
        r.error = Err("top-level execution not owned by the environment");
        return r;
      }
      continue;
    }
    if (invocation_count[e.id] != 1) {
      r.error = Err("non-top-level execution with no invoking message");
      return r;
    }
    // Acyclic ancestry: walk up with a step bound.
    ExecId cur = e.id;
    size_t hops = 0;
    while (cur != kNoExec) {
      cur = h.executions[cur].parent;
      if (++hops > h.executions.size()) {
        r.error = Err("ancestry cycle: execution is its own proper ancestor");
        return r;
      }
    }
  }

  // --- Condition 2a: < contains ◁.  With interval stamps, t ◁ t' (strictly
  // smaller po_index in the same execution) must imply end(t) <= start(t'). ---
  for (const MethodExecution& e : h.executions) {
    for (size_t i = 0; i < e.steps.size(); ++i) {
      for (size_t j = i + 1; j < e.steps.size(); ++j) {
        const Step& a = h.steps[e.steps[i]];
        const Step& b = h.steps[e.steps[j]];
        if (a.po_index < b.po_index && a.end_seq > b.start_seq) {
          std::ostringstream os;
          os << "program order violated in execution " << e.id << ": step #"
             << a.id << " (po " << a.po_index << ") overlaps step #" << b.id
             << " (po " << b.po_index << ")";
          r.error = os.str();
          return r;
        }
      }
    }
  }

  // --- Condition 2b: all conflicting local steps of the same object are
  // ordered.  Every local step appears in the per-object application order
  // (a total order), so it suffices to check membership and that the order
  // is consistent with the temporal intervals. ---
  std::set<StepId> in_order;
  for (ObjectId o = 0; o < h.num_objects(); ++o) {
    uint64_t last_end = 0;
    (void)last_end;
    for (size_t i = 0; i < h.object_order[o].size(); ++i) {
      StepId sid = h.object_order[o][i];
      const Step& s = h.steps[sid];
      if (s.kind != StepKind::kLocal || s.object != o) {
        r.error = Err("object_order contains a foreign step");
        return r;
      }
      if (!in_order.insert(sid).second) {
        r.error = Err("object_order repeats a step");
        return r;
      }
      // Application order must not contradict real time: a step that
      // temporally completed before another began must not be ordered
      // after it.
      for (size_t j = i + 1; j < h.object_order[o].size(); ++j) {
        const Step& later = h.steps[h.object_order[o][j]];
        if (later.end_seq < s.start_seq) {
          std::ostringstream os;
          os << "object " << h.object_names[o]
             << ": application order contradicts temporal order (steps #"
             << s.id << ", #" << later.id << ")";
          r.error = os.str();
          return r;
        }
      }
    }
  }
  for (const Step& s : h.steps) {
    if (s.kind == StepKind::kLocal && in_order.count(s.id) == 0) {
      r.error = Err("local step missing from its object's application order");
      return r;
    }
  }

  // --- Condition 2c: descendents inherit <.  For two message steps of one
  // execution with m ◁ m', every step under B(m) must complete before any
  // step under B(m') starts.  (Steps sharing a po_index — a parallel batch —
  // are unordered and impose nothing.) ---
  for (const MethodExecution& e : h.executions) {
    for (size_t i = 0; i < e.steps.size(); ++i) {
      const Step& m = h.steps[e.steps[i]];
      if (m.kind != StepKind::kMessage) continue;
      for (size_t j = 0; j < e.steps.size(); ++j) {
        const Step& m2 = h.steps[e.steps[j]];
        if (m2.kind != StepKind::kMessage || m.po_index >= m2.po_index) {
          continue;
        }
        // All steps of descendents of B(m) vs descendents of B(m2).
        for (const MethodExecution& f : h.executions) {
          if (!h.IsAncestorOrSelf(m.callee, f.id)) continue;
          for (StepId sa : f.steps) {
            for (const MethodExecution& g : h.executions) {
              if (!h.IsAncestorOrSelf(m2.callee, g.id)) continue;
              for (StepId sb : g.steps) {
                if (h.steps[sa].end_seq > h.steps[sb].start_seq) {
                  std::ostringstream os;
                  os << "condition 2c violated between descendents of "
                        "messages #"
                     << m.id << " and #" << m2.id;
                  r.error = os.str();
                  return r;
                }
              }
            }
          }
        }
      }
    }
  }

  // --- Condition 3: the recorded application order replays legally. ---
  ReplayResult replay = Replay(h, committed_only);
  if (!replay.ok) {
    r.error = "condition 3 (replay) failed: " + replay.error;
    return r;
  }

  r.legal = true;
  return r;
}

}  // namespace objectbase::model
