file(REMOVE_RECURSE
  "CMakeFiles/protocol_gemstone_test.dir/tests/protocol_gemstone_test.cc.o"
  "CMakeFiles/protocol_gemstone_test.dir/tests/protocol_gemstone_test.cc.o.d"
  "protocol_gemstone_test"
  "protocol_gemstone_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_gemstone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
