#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace objectbase {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ForkIndependent) {
  Rng a(5);
  Rng b = a.Fork();
  // The fork should not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(13);
  std::map<size_t, int> counts;
  for (int i = 0; i < 30000; ++i) counts[rng.WeightedIndex({1.0, 3.0})]++;
  double frac1 = static_cast<double>(counts[1]) / 30000;
  EXPECT_NEAR(frac1, 0.75, 0.03);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  Rng rng(17);
  ZipfGenerator zipf(100, 0.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[zipf.Next(rng)]++;
  // Every key hit, none dominating.
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [k, c] : counts) EXPECT_LT(c, 2000);
}

TEST(ZipfTest, HighThetaSkews) {
  Rng rng(19);
  ZipfGenerator zipf(100, 0.9);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 100u);
    counts[v]++;
  }
  // Key 0 should take a disproportionate share.
  EXPECT_GT(counts[0], n / 20);
}

}  // namespace
}  // namespace objectbase
