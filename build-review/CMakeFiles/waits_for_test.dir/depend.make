# Empty dependencies file for waits_for_test.
# This may be replaced when dependencies are built.
