#!/usr/bin/env bash
# Runs the protocol experiment binary and records its JSON lines as
# BENCH_protocols.json at the repo root — the committed perf-trajectory
# baseline.  Usage:
#
#   scripts/bench_baseline.sh [path/to/bench_protocols]
#
# With no argument the script configures+builds a Release tree under
# build-bench/ first.  `cmake --build build -t bench-baseline` wraps this
# with the already-built binary.  Set OBJBASE_BENCH_SCALE for longer runs.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
bench_bin="${1:-}"

if [[ -z "${bench_bin}" ]]; then
  cmake -B "${repo_root}/build-bench" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release -DBUILD_TESTING=OFF >/dev/null
  cmake --build "${repo_root}/build-bench" -j "$(nproc)" \
        --target bench_protocols >/dev/null
  bench_bin="${repo_root}/build-bench/bench_protocols"
fi

log="$(mktemp)"
json="$(mktemp)"
trap 'rm -f "${log}" "${json}"' EXIT
"${bench_bin}" | tee "${log}"
# Stage into a temp file and move only on success, so a run that emits no
# JSON rows cannot truncate the committed baseline.
if ! grep '^{"bench"' "${log}" > "${json}"; then
  echo "error: bench emitted no JSON rows; baseline left untouched" >&2
  exit 1
fi
mv "${json}" "${repo_root}/BENCH_protocols.json"
echo
echo "wrote $(wc -l < "${repo_root}/BENCH_protocols.json") JSON rows to" \
     "${repo_root}/BENCH_protocols.json"
