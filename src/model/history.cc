#include "src/model/history.h"

namespace objectbase::model {

History History::Clone() const {
  History h;
  h.executions = executions;
  h.steps = steps;
  h.specs = specs;
  h.object_names = object_names;
  h.object_order = object_order;
  h.initial_states.reserve(initial_states.size());
  for (const auto& s : initial_states) {
    h.initial_states.push_back(s == nullptr ? nullptr : s->Clone());
  }
  return h;
}

bool History::IsAncestorOrSelf(ExecId a, ExecId d) const {
  while (d != kNoExec) {
    if (d == a) return true;
    d = executions[d].parent;
  }
  return false;
}

bool History::Incomparable(ExecId a, ExecId b) const {
  return !IsAncestorOrSelf(a, b) && !IsAncestorOrSelf(b, a);
}

ExecId History::Lca(ExecId a, ExecId b) const {
  // Walk both chains to the same depth, then in lockstep.
  int la = Level(a);
  int lb = Level(b);
  while (la > lb) {
    a = executions[a].parent;
    --la;
  }
  while (lb > la) {
    b = executions[b].parent;
    --lb;
  }
  while (a != b) {
    if (a == kNoExec || b == kNoExec) return kNoExec;
    a = executions[a].parent;
    b = executions[b].parent;
  }
  return a;  // may be kNoExec when in different trees
}

int History::Level(ExecId e) const {
  int l = 0;
  e = executions[e].parent;
  while (e != kNoExec) {
    ++l;
    e = executions[e].parent;
  }
  return l;
}

ExecId History::TopAncestor(ExecId e) const {
  while (executions[e].parent != kNoExec) e = executions[e].parent;
  return e;
}

std::vector<ExecId> History::TopLevel() const {
  std::vector<ExecId> tops;
  for (const auto& e : executions) {
    if (e.parent == kNoExec) tops.push_back(e.id);
  }
  return tops;
}

bool History::EffectivelyAborted(ExecId e) const {
  while (e != kNoExec) {
    if (executions[e].aborted) return true;
    e = executions[e].parent;
  }
  return false;
}

bool History::StepConflicts(const Step& first, const Step& second) const {
  if (first.object != second.object) return false;
  const adt::AdtSpec& spec = *specs[first.object];
  adt::StepView a{first.op, &first.args, &first.ret};
  adt::StepView b{second.op, &second.args, &second.ret};
  return spec.StepConflicts(a, b);
}

}  // namespace objectbase::model
