#include "src/runtime/recorder.h"

namespace objectbase::rt {

void Recorder::Reset(const ObjectBase& base) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> g(mu_);
  history_ = model::History();
  seq_.store(0);
  for (uint32_t i = 0; i < base.size(); ++i) {
    const Object& o = base.Get(i);
    history_.specs.push_back(o.spec_ptr());
    history_.initial_states.push_back(o.state().Clone());
    history_.object_names.push_back(o.name());
    history_.object_order.emplace_back();
  }
}

model::ExecId Recorder::BeginExecution(model::ExecId parent,
                                       model::ObjectId object,
                                       const std::string& method) {
  if (!enabled_) return model::kNoExec;
  std::lock_guard<std::mutex> g(mu_);
  model::ExecId id = static_cast<model::ExecId>(history_.executions.size());
  model::MethodExecution e;
  e.id = id;
  e.parent = parent;
  e.object = object;
  e.method = method;
  history_.executions.push_back(std::move(e));
  return id;
}

void Recorder::MarkAborted(model::ExecId exec) {
  if (!enabled_ || exec == model::kNoExec) return;
  std::lock_guard<std::mutex> g(mu_);
  history_.executions[exec].aborted = true;
}

void Recorder::RecordLocalStep(model::ExecId exec, uint32_t po_index,
                               model::ObjectId object, const std::string& op,
                               const Args& args, const Value& ret,
                               uint64_t start_seq, uint64_t end_seq) {
  if (!enabled_ || exec == model::kNoExec) return;
  std::lock_guard<std::mutex> g(mu_);
  model::Step s;
  s.id = static_cast<model::StepId>(history_.steps.size());
  s.kind = model::StepKind::kLocal;
  s.exec = exec;
  s.po_index = po_index;
  s.object = object;
  s.op = op;
  s.args = args;
  s.ret = ret;
  s.start_seq = start_seq;
  s.end_seq = end_seq;
  history_.executions[exec].steps.push_back(s.id);
  history_.object_order[object].push_back(s.id);
  history_.steps.push_back(std::move(s));
}

void Recorder::RecordMessageStep(model::ExecId exec, uint32_t po_index,
                                 model::ExecId callee, uint64_t start_seq,
                                 uint64_t end_seq) {
  if (!enabled_ || exec == model::kNoExec || callee == model::kNoExec) return;
  std::lock_guard<std::mutex> g(mu_);
  model::Step s;
  s.id = static_cast<model::StepId>(history_.steps.size());
  s.kind = model::StepKind::kMessage;
  s.exec = exec;
  s.po_index = po_index;
  s.callee = callee;
  s.start_seq = start_seq;
  s.end_seq = end_seq;
  history_.executions[exec].steps.push_back(s.id);
  history_.steps.push_back(std::move(s));
}

model::History Recorder::Snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  return history_.Clone();
}

}  // namespace objectbase::rt
