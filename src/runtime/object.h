// Object: a runtime object of the object base.
//
// Pairs an AdtSpec with a live state, the per-object serialisation mutex
// (local steps are atomic state transformers, Definition 2 — unless the
// spec provides its own internal synchronisation), and the lock-free
// applied-step journal the timestamp/certification protocols use for
// conflict detection (see src/runtime/journal.h and docs/journal.md).
#ifndef OBJECTBASE_RUNTIME_OBJECT_H_
#define OBJECTBASE_RUNTIME_OBJECT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/adt/adt.h"
#include "src/cc/hts.h"
#include "src/common/value.h"
#include "src/runtime/journal.h"

namespace objectbase::rt {

/// Per-object contention telemetry: monotone relaxed counters bumped on
/// the hot paths (no mutexes, no fences — the step-path zero-mutex
/// invariant tests still hold with telemetry on).  Consumers (the policy
/// governor, benches) sample deltas per window and smooth with an EWMA on
/// their side; single-writer-per-sample keeps the readout race-free.
struct ContentionTelemetry {
  /// Local steps admitted on this object (any protocol).
  std::atomic<uint64_t> steps{0};
  /// Lock requests that blocked (first block per request) — the locking
  /// protocols' conflict signal.
  std::atomic<uint64_t> lock_conflicts{0};
  /// Conflict dependencies observed by the journal scans (NTO/CERT/MIXED)
  /// — the optimistic protocols' conflict signal.
  std::atomic<uint64_t> journal_conflicts{0};
  /// Aborted subtrees whose rollback touched this object.
  std::atomic<uint64_t> aborts{0};
  /// Nanoseconds lock requests spent blocked on this object.
  std::atomic<uint64_t> wait_ns{0};

  void Reset() {
    steps.store(0, std::memory_order_relaxed);
    lock_conflicts.store(0, std::memory_order_relaxed);
    journal_conflicts.store(0, std::memory_order_relaxed);
    aborts.store(0, std::memory_order_relaxed);
    wait_ns.store(0, std::memory_order_relaxed);
  }
};

class Object {
 public:
  Object(uint32_t id, std::string name,
         std::shared_ptr<const adt::AdtSpec> spec);
  ~Object();

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const adt::AdtSpec& spec() const { return *spec_; }
  std::shared_ptr<const adt::AdtSpec> spec_ptr() const { return spec_; }

  adt::AdtState& state() { return *state_; }
  const adt::AdtState& state() const { return *state_; }

  /// Resets the state to a fresh initial state (between workload runs).
  /// Requires quiescence (no running transactions).
  void ResetState();

  /// The per-object apply latch.  Held EXCLUSIVE around apply for every
  /// spec that does not support concurrent application, and for ops the
  /// spec marked exclusive_apply (non-linearizable scans).  Concurrent-
  /// apply objects take it SHARED around apply — recorded or not; the
  /// application order comes from the journal position reserved at the
  /// ADT's internal linearization point (src/adt/apply_order.h) — which
  /// lets their internal latches provide the synchronisation while still
  /// excluding rebuild/fold (which take it exclusive).  It also provides
  /// the journal's append/fold exclusion (journal.h locking contract).
  std::shared_mutex& state_mu() { return state_mu_; }

  bool concurrent_apply() const { return spec_->supports_concurrent_apply(); }

  /// Home shard under a sharded base (0 when unsharded).  Assigned at
  /// creation / pin time, before execution starts; steady-state reads are
  /// plain loads on the routing path.
  uint32_t shard() const { return shard_; }
  void set_shard(uint32_t s) { shard_ = s; }

  /// Per-object apply-order ticket for the NON-journaled protocols
  /// (N2PL/GEMSTONE): drawn inside the exclusive apply critical section,
  /// so ticket order IS the application order — the concrete < on this
  /// object's local steps — without touching any global counter.  The
  /// journaled protocols use the journal position instead.
  uint64_t NextApplyStamp() {
    return apply_stamp_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// The applied-step journal.  Appends and maintenance go through the
  /// helpers below (they know which latches the contract needs); scans are
  /// lock-free (AppliedJournal::Scan) and need no latch at all.
  AppliedJournal& journal() { return *journal_; }
  const AppliedJournal& journal() const { return *journal_; }

  /// Journal length without any lock (relaxed) — the per-step GC cadence
  /// polls this on every local operation.
  size_t applied_log_size() const { return journal_->LiveCount(); }

  /// Ops whose operation class conflicts with `op` (a row of the spec's
  /// conflict matrix, precomputed at construction).  The conflict scans
  /// feed this to AppliedJournal::Scan::ForEachConflicting; soundness for
  /// kStep granularity rests on the op table dominating the step table
  /// (pinned by adt_commutativity_test.OpDominatesStep).
  const std::vector<adt::OpId>& ConflictRowFor(adt::OpId op) const {
    return conflict_rows_[op];
  }

  // --- rebuild-based rollback (NTO/CERT/MIXED) -----------------------------
  //
  // The non-blocking protocols allow conflicting steps on top of uncommitted
  // ones; a later cascade of aborts cannot be rolled back with per-step
  // inverse operations (undo order would have to be globally reverse-
  // chronological across transactions).  Instead the object keeps a base
  // state plus the applied journal: aborting a subtree marks its entries
  // aborted and REBUILDS state = base + non-aborted entries in order — the
  // executable form of the paper's failure-semantics requirement (a): the
  // committed projection is what the state reflects.

  /// Marks every journal entry issued by the subtree rooted at
  /// `subtree_root_uid` as aborted and rebuilds the state from the base.
  /// Takes state_mu exclusive.
  ///
  /// Rebuild soundness (fuzz-found; docs/journal.md): a SURVIVING entry
  /// whose recorded outcome depended on the excised prefix must not be
  /// re-applied — on the corrected state its effect can differ from the
  /// recorded one (an erase that failed against excised state succeeds on
  /// rebuild and silently mutates).  Every such survivor belongs to a
  /// transaction with a dependency edge from the excised one, so the
  /// controller passes `doom_dependents` (runs the registry's transitive
  /// doom cascade; called under state_mu AFTER marking, which makes it
  /// atomic against concurrent steps on this object) and `exclude_dep`
  /// (true for entries of doomed transactions — they can never commit, and
  /// their own aborts mark these entries for good).
  void AbortEntriesAndRebuild(
      uint64_t subtree_root_uid, const std::function<void()>& doom_dependents,
      const std::function<bool(uint64_t dep_raw)>& exclude_dep);

  /// Folds the maximal journal prefix whose top-level serial number is
  /// below `watermark` (every such transaction has finished) into the base
  /// state and retires it — Section 5.2's "mechanism to forget".  Takes
  /// state_mu exclusive (plus the journal's counted fold_mu).  Returns
  /// entries folded.
  /// `rearm_base` != 0 arms the journal's adaptive fold cadence (see
  /// AppliedJournal::Fold); controllers pass their fold threshold.
  size_t FoldPrefix(uint64_t watermark, size_t rearm_base = 0);

  // --- WAL recovery (src/runtime/wal.h) ------------------------------------

  /// Replays one durable redo record onto the live state and returns the
  /// operation's return value (recovery re-checks it against the recorded
  /// one).  Quiescent use only (restart-time recovery).
  Value ApplyRedo(adt::OpId op, const Args& args);

  /// Recovery epilogue: base state := recovered live state, journal
  /// cleared — the rebuild/fold machinery then starts from the recovered
  /// state instead of the initial one.
  void SealRecoveredState();

  // --- cached lock-table handle (cc::LockManager) --------------------------
  //
  // Mirrors the DepRef pattern of the dependency registry: the lock manager
  // resolves this object's table once and caches the pointer HERE, so the
  // steady-state Acquire path is a single list probe (length 1 in practice)
  // instead of a global-registry lookup.  Keyed by a process-unique manager
  // id (never recycled), so a stale node left by a destroyed manager is
  // only ever compared against, never dereferenced.  The payload is opaque
  // to the runtime layer (a cc::LockManager-internal table pointer).

  /// The table cached for `manager_id`, or nullptr if this manager has not
  /// touched the object yet.  Lock-free.
  void* CachedLockTable(uint64_t manager_id) const {
    for (const LockTableCacheNode* n =
             lock_table_cache_.load(std::memory_order_acquire);
         n != nullptr; n = n->next) {
      if (n->manager_id == manager_id) return n->table;
    }
    return nullptr;
  }

  /// Publishes the (manager, table) pair; idempotent per manager.
  void CacheLockTable(uint64_t manager_id, void* table);

  /// Contention telemetry (relaxed atomics; see ContentionTelemetry).
  ContentionTelemetry& contention() { return contention_; }
  const ContentionTelemetry& contention() const { return contention_; }

 private:
  struct LockTableCacheNode {
    uint64_t manager_id;
    void* table;
    LockTableCacheNode* next;
  };

  uint32_t id_;
  uint32_t shard_ = 0;  // home shard (see shard())
  std::string name_;
  std::shared_ptr<const adt::AdtSpec> spec_;
  std::unique_ptr<adt::AdtState> state_;
  std::unique_ptr<adt::AdtState> base_state_;  // journal base (see above)
  std::shared_mutex state_mu_;
  std::atomic<uint64_t> apply_stamp_{0};  // NextApplyStamp ticket source
  std::unique_ptr<AppliedJournal> journal_;
  std::vector<std::vector<adt::OpId>> conflict_rows_;  // by OpId
  // CAS-pushed singly linked list, one node per caching lock manager
  // (almost always exactly one); freed by the destructor.
  std::atomic<LockTableCacheNode*> lock_table_cache_{nullptr};
  ContentionTelemetry contention_;
};

}  // namespace objectbase::rt

#endif  // OBJECTBASE_RUNTIME_OBJECT_H_
