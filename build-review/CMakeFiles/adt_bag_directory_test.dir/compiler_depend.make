# Empty compiler generated dependencies file for adt_bag_directory_test.
# This may be replaced when dependencies are built.
