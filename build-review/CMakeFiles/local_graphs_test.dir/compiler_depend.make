# Empty compiler generated dependencies file for local_graphs_test.
# This may be replaced when dependencies are built.
