# Empty compiler generated dependencies file for protocol_cert_test.
# This may be replaced when dependencies are built.
