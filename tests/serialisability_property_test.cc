// The headline property test: FOR EVERY protocol, granularity and seed,
// every history the runtime produces under contention is legal (Definition
// 6), has an acyclic serialisation graph whose serial replay is equivalent
// (Theorem 2 / Definition 7) and satisfies Theorem 5's conditions.
//
// This is the executable form of Theorems 3 and 4 (and of the certifier's
// correctness): a bug in any lock rule, timestamp check, undo path or
// cascade would surface here as a cyclic SG, a replay divergence or an
// illegal committed projection.
#include <gtest/gtest.h>

#include <thread>

#include "src/adt/bank_account_adt.h"
#include "src/adt/counter_adt.h"
#include "src/adt/queue_adt.h"
#include "src/adt/register_adt.h"
#include "src/adt/set_adt.h"
#include "src/common/rng.h"
#include "src/model/legality.h"
#include "src/model/local_graphs.h"
#include "src/model/serialiser.h"
#include "src/runtime/executor.h"

namespace objectbase::rt {
namespace {

struct Config {
  Protocol protocol;
  cc::Granularity granularity;
  uint64_t seed;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  return std::string(ProtocolName(info.param.protocol)) +
         (info.param.granularity == cc::Granularity::kStep ? "_step" : "_op") +
         "_s" + std::to_string(info.param.seed);
}

class SerialisabilityPropertyTest : public ::testing::TestWithParam<Config> {};

TEST_P(SerialisabilityPropertyTest, RandomContendedRunsAreSerialisable) {
  const Config cfg = GetParam();
  ObjectBase base;
  base.CreateObject("r0", adt::MakeRegisterSpec(0));
  base.CreateObject("r1", adt::MakeRegisterSpec(0));
  base.CreateObject("ctr", adt::MakeCounterSpec(0));
  base.CreateObject("set", adt::MakeSetSpec());
  base.CreateObject("q", adt::MakeQueueSpec());
  base.CreateObject("acct", adt::MakeBankAccountSpec(500));
  Executor exec(base, {.protocol = cfg.protocol,
                       .granularity = cfg.granularity,
                       .max_top_retries = 50});

  const int threads = 4;
  const int txns = 30;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(cfg.seed * 101 + t);
      for (int i = 0; i < txns; ++i) {
        // Random transaction shape: 1-4 operations over random objects,
        // with nesting and occasional parallel batches and user aborts.
        int n_ops = 1 + static_cast<int>(rng.Uniform(4));
        std::vector<int> kinds;
        std::vector<int64_t> keys;
        for (int k = 0; k < n_ops; ++k) {
          kinds.push_back(static_cast<int>(rng.Uniform(7)));
          keys.push_back(rng.Range(0, 5));
        }
        bool user_abort = rng.Bernoulli(0.08);
        exec.RunTransaction("rand", [&, kinds, keys,
                            user_abort](MethodCtx& txn) -> Value {
          for (size_t k = 0; k < kinds.size(); ++k) {
            int64_t key = keys[k];
            switch (kinds[k]) {
              case 0: txn.Invoke("r0", "write", {key}); break;
              case 1: txn.Invoke("r1", "read"); break;
              case 2: txn.Invoke("ctr", "add", {key + 1}); break;
              case 3: txn.Invoke("set", "insert", {key}); break;
              case 4: txn.Invoke("set", "erase", {key}); break;
              case 5:
                if (txn.Invoke("acct", "withdraw", {key + 1}).AsBool()) {
                  txn.Invoke("ctr", "add", {1});
                }
                break;
              default:
                txn.InvokeParallel({{"q", "enqueue", {key}},
                                    {"ctr", "add", {1}}});
                break;
            }
          }
          if (user_abort) txn.Abort();
          return Value();
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  model::History h = exec.recorder().Snapshot();
  model::LegalityResult legal = model::CheckLegal(h, /*committed_only=*/true);
  ASSERT_TRUE(legal.legal) << legal.error;
  model::SerialisabilityCheck check = model::CheckSerialisable(h);
  ASSERT_TRUE(check.serialisable) << check.detail;
  model::Theorem5Result t5 = model::CheckTheorem5(h);
  ASSERT_TRUE(t5.holds) << t5.detail;
  EXPECT_GT(exec.stats().committed.load(), 0u);
}

std::vector<Config> AllConfigs() {
  std::vector<Config> configs;
  for (Protocol p : {Protocol::kN2pl, Protocol::kNto, Protocol::kCert,
                     Protocol::kGemstone, Protocol::kMixed}) {
    for (cc::Granularity g :
         {cc::Granularity::kOperation, cc::Granularity::kStep}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        configs.push_back({p, g, seed});
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerialisabilityPropertyTest,
                         ::testing::ValuesIn(AllConfigs()), ConfigName);

// A negative control: the oracle is not vacuous.  Running the same
// contended workload with NO concurrency control (a deliberately broken
// "controller" emulated by direct state access) must be flagged — here we
// emulate it by building a history with a known cycle and checking the
// oracle rejects it (the Section 2 example lives in
// serialisation_graph_test; this guards the end-to-end path).
TEST(SerialisabilityOracleControl, OracleRejectsKnownBadHistory) {
  // Build via the runtime with CERT but forge the history afterwards:
  // swap two conflicting steps' application order to fabricate a cycle.
  ObjectBase base;
  base.CreateObject("a", adt::MakeRegisterSpec(0));
  base.CreateObject("b", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = Protocol::kCert});
  exec.RunTransaction("T1", [](MethodCtx& txn) {
    txn.Invoke("a", "write", {1});
    txn.Invoke("b", "write", {1});
    return Value();
  });
  exec.RunTransaction("T2", [](MethodCtx& txn) {
    txn.Invoke("a", "write", {2});
    txn.Invoke("b", "write", {2});
    return Value();
  });
  model::History h = exec.recorder().Snapshot();
  ASSERT_TRUE(model::CheckSerialisable(h).serialisable);
  // Forge: reverse B's application order (T2's write before T1's) => the
  // serialisation orders at A and B now disagree.
  model::ObjectId b_id = 1;
  ASSERT_EQ(h.object_names[b_id], "b");
  std::swap(h.object_order[b_id][0], h.object_order[b_id][1]);
  model::SerialisabilityCheck check = model::CheckSerialisable(h);
  EXPECT_FALSE(check.serialisable);
}

}  // namespace
}  // namespace objectbase::rt
