#include "src/cc/gemstone_controller.h"

#include "src/runtime/apply.h"
#include "src/runtime/wal.h"

namespace objectbase::cc {

GemstoneController::GemstoneController(rt::Recorder& recorder,
                                       bool shared_reads)
    : recorder_(recorder), shared_reads_(shared_reads) {}

void GemstoneController::OnTopBegin(rt::TxnNode&) {}

OpOutcome GemstoneController::ExecuteLocal(rt::TxnNode& txn, rt::Object& obj,
                                           const adt::OpDescriptor& op,
                                           const Args& args) {
  // The whole-object lock is owned by the TOP-LEVEL transaction directly
  // (the reduction flattens the nesting: the object is one data item and
  // the user transaction reads/writes it).  Read-only operations are the
  // reduction's reads: a shared lock; anything else writes: exclusive.
  LockManager::Request req;
  if (shared_reads_ && op.read_only) {
    req.shared = true;
  } else {
    req.exclusive = true;
  }
  switch (locks_.Acquire(*txn.top(), obj, std::move(req))) {
    case LockManager::Outcome::kGranted:
      break;
    case LockManager::Outcome::kDeadlock:
      return OpOutcome::Abort(AbortReason::kDeadlock);
    case LockManager::Outcome::kWounded:
      // Whole-object locks are owned by the top, so a GEMSTONE wound is
      // always a whole-top abort (the reduction has no inner subtree that
      // could absorb it).
      return OpOutcome::Abort(AbortReason::kWounded);
  }
  std::lock_guard<std::shared_mutex> g(obj.state_mu());
  rt::AppliedOutcome out = rt::ApplyLocked(txn, obj, op, args, recorder_,
                                           /*append_applied_log=*/false, wal_);
  return OpOutcome::Ok(std::move(out.ret));
}

void GemstoneController::OnChildCommit(rt::TxnNode&) {}

bool GemstoneController::OnTopCommit(rt::TxnNode& top, AbortReason*) {
  if (wal_ != nullptr) {
    // Same reasoning as N2PL: strict whole-object locks are released only
    // at OnTopFinished, so durability is ordered before visibility.
    wal_->WaitDurable(wal_->StageCommit(top.uid()), &locks_.waits_for(),
                      ThisThreadKey());
  }
  return true;
}

void GemstoneController::OnAbort(rt::TxnNode& node) {
  if (node.parent() == nullptr) locks_.ReleaseSubtree(node);
}

void GemstoneController::OnTopFinished(rt::TxnNode& top) {
  locks_.ReleaseSubtree(top);
}

}  // namespace objectbase::cc
