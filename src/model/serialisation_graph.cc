#include "src/model/serialisation_graph.h"

#include <algorithm>
#include <unordered_set>

#include "src/model/history_index.h"

namespace objectbase::model {

Digraph::Digraph(size_t n, bool expect_dense)
    : adj_(n), dirty_(n, 0), bits_(n, kDenseBitsLimit) {
  if (expect_dense && bits_.eligible() && n <= kEagerBitsetNodes) {
    bits_.Allocate();
  }
}

void Digraph::ActivateBitset() {
  // Canonicalise first so the backfill seeds exactly the current edge set.
  CompactAll();
  bits_.Allocate();
  for (uint32_t v = 0; v < adj_.size(); ++v) {
    for (uint32_t w : adj_[v]) bits_.TestAndSet(v, w);
  }
}

void Digraph::AddEdge(uint32_t from, uint32_t to) {
  if (from == to) return;
  if (bits_.active()) {
    if (bits_.TestAndSet(from, to)) return;  // duplicate: already present
    // The vector stays duplicate-free; it is merely unsorted until the
    // next query of this node.
  } else if (bits_.eligible() && ++raw_inserts_ >= kLazyActivationEdges) {
    ActivateBitset();
    if (bits_.TestAndSet(from, to)) return;
  }
  adj_[from].push_back(to);
  dirty_[from] = 1;
  any_dirty_ = true;
}

void Digraph::Compact(uint32_t v) const {
  if (!dirty_[v]) return;
  auto& succ = adj_[v];
  std::sort(succ.begin(), succ.end());
  if (!bits_.active()) {
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
  }
  dirty_[v] = 0;
}

void Digraph::CompactAll() const {
  if (!any_dirty_) return;
  for (uint32_t v = 0; v < adj_.size(); ++v) Compact(v);
  any_dirty_ = false;
}

bool Digraph::HasEdge(uint32_t from, uint32_t to) const {
  if (bits_.active()) return bits_.Test(from, to);
  Compact(from);
  return std::binary_search(adj_[from].begin(), adj_[from].end(), to);
}

const std::vector<uint32_t>& Digraph::Successors(uint32_t from) const {
  Compact(from);
  return adj_[from];
}

size_t Digraph::EdgeCount() const {
  CompactAll();
  size_t n = 0;
  for (const auto& succ : adj_) n += succ.size();
  return n;
}

bool Digraph::IsAcyclic() const { return !FindCycle().has_value(); }

bool Digraph::OnCycle(uint32_t start) const {
  // Reachability DFS: `start` is on a cycle iff an edge leads back to it
  // from a vertex reachable from it.  Duplicate edges (possible while a
  // node is dirty) only re-test visited vertices, so no compaction needed.
  state_.assign(adj_.size(), 0);
  vstack_.clear();
  vstack_.push_back(start);
  while (!vstack_.empty()) {
    const uint32_t v = vstack_.back();
    vstack_.pop_back();
    for (uint32_t w : adj_[v]) {
      if (w == start) return true;
      if (!state_[w]) {
        state_[w] = 1;
        vstack_.push_back(w);
      }
    }
  }
  return false;
}

std::optional<std::vector<uint32_t>> Digraph::FindCycle() const {
  enum { kWhite, kGrey, kBlack };
  state_.assign(adj_.size(), kWhite);
  vstack_.clear();
  dfs_.clear();

  // Iterative DFS with an explicit stack of (vertex, successor index).
  // Duplicate edges (possible while a node is dirty) only revisit black
  // vertices, so traversal needs no compaction.
  for (uint32_t start = 0; start < adj_.size(); ++start) {
    if (state_[start] != kWhite) continue;
    state_[start] = kGrey;
    vstack_.push_back(start);
    dfs_.emplace_back(start, 0);
    while (!dfs_.empty()) {
      auto& [v, i] = dfs_.back();
      if (i == adj_[v].size()) {
        state_[v] = kBlack;
        vstack_.pop_back();
        dfs_.pop_back();
        continue;
      }
      uint32_t w = adj_[v][i++];
      if (state_[w] == kGrey) {
        // Found a cycle: extract it from the grey stack.
        std::vector<uint32_t> cycle;
        auto pos = std::find(vstack_.begin(), vstack_.end(), w);
        cycle.assign(pos, vstack_.end());
        cycle.push_back(w);
        return cycle;
      }
      if (state_[w] == kWhite) {
        state_[w] = kGrey;
        vstack_.push_back(w);
        dfs_.emplace_back(w, 0);
      }
    }
  }
  return std::nullopt;
}

std::vector<uint32_t> Digraph::TopologicalOrder(
    const std::vector<uint32_t>& nodes) const {
  // 0 unvisited, 1 active, 2 done, 3 outside the node set.
  state_.assign(adj_.size(), 3);
  for (uint32_t v : nodes) state_[v] = 0;
  std::vector<uint32_t> order;
  order.reserve(nodes.size());
  dfs_.clear();
  for (uint32_t start : nodes) {
    if (state_[start] != 0) continue;
    state_[start] = 1;
    dfs_.emplace_back(start, 0);
    while (!dfs_.empty()) {
      auto& [v, i] = dfs_.back();
      // Skip edges leaving the node set and edges to finished vertices.
      while (i < adj_[v].size() &&
             (state_[adj_[v][i]] == 3 || state_[adj_[v][i]] == 2)) {
        ++i;
      }
      if (i == adj_[v].size()) {
        state_[v] = 2;
        order.push_back(v);
        dfs_.pop_back();
        continue;
      }
      uint32_t w = adj_[v][i++];
      if (state_[w] == 0) {
        state_[w] = 1;
        dfs_.emplace_back(w, 0);
      }
      // state_[w] == 1 would be a cycle; callers guarantee acyclicity.
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

void Digraph::UnionWith(const Digraph& other) {
  if (&other == this) return;  // AddEdge would invalidate the iteration
  for (uint32_t v = 0; v < other.adj_.size(); ++v) {
    for (uint32_t w : other.adj_[v]) AddEdge(v, w);
  }
}

namespace {

// Marks distinct (from, to) execution pairs whose SG edge fan-out has been
// emitted, so conflicting step pairs between the same two executions do the
// chain work once.  Dense bitmap for small histories, hash set above that
// (a single memo per build, so its budget is looser than Digraph's
// per-graph one).
class PairMemo {
 public:
  explicit PairMemo(size_t n) : bits_(n, kDenseLimit) {
    // One memo per build: allocate eagerly, the budget is already sized
    // for a single instance.
    if (bits_.eligible()) bits_.Allocate();
  }

  bool Contains(uint32_t a, uint32_t b) const {
    if (bits_.active()) return bits_.Test(a, b);
    return set_.count((uint64_t{a} << 32) | b) > 0;
  }

  void Insert(uint32_t a, uint32_t b) {
    if (bits_.active()) {
      bits_.TestAndSet(a, b);
      return;
    }
    set_.insert((uint64_t{a} << 32) | b);
  }

 private:
  static constexpr uint64_t kDenseLimit = uint64_t{1} << 27;  // 16 MiB

  DensePairBits bits_;
  std::unordered_set<uint64_t> set_;
};

}  // namespace

Digraph BuildSerialisationGraph(const History& h, bool committed_only) {
  const size_t n = h.executions.size();
  Digraph g(n, /*expect_dense=*/true);
  if (n == 0) return g;

  // One pass over the forest: depth, tops, Euler intervals (O(1) ancestry
  // tests and contiguous descendant slices) and the effectively-aborted
  // closure.  Nothing below re-walks parent chains per pair.
  const HistoryIndex idx(h);
  auto excluded = [&](ExecId e) {
    return committed_only && idx.EffectivelyAborted(e);
  };

  // Adds the SG edges for a pair of ordered conflicting steps (or ◁-ordered
  // messages) owned by incomparable executions a, b: an edge u -> u' for
  // every pair of incomparable ancestors-or-self (the Observation after
  // Definition 9).  Exactly the ancestors strictly below lca(a, b) qualify:
  // at or above the lca the pair is comparable, and below it the two paths
  // run through different children of the lca, hence every cross pair is
  // incomparable — no per-pair incomparability tests needed.
  PairMemo done(n);
  std::vector<ExecId> chain_a, chain_b;
  auto add_edges_for_pair = [&](ExecId a, ExecId b) {
    const ExecId lca = idx.Lca(a, b);
    chain_a.clear();
    chain_b.clear();
    idx.ChainBelow(a, lca, chain_a);
    idx.ChainBelow(b, lca, chain_b);
    for (ExecId u : chain_a) {
      for (ExecId u2 : chain_b) g.AddEdge(u, u2);
    }
  };

  // Type (a) edges: ordered conflicting local steps.
  std::vector<const Step*> live;
  for (ObjectId o = 0; o < h.num_objects(); ++o) {
    // Committed projection of the object's application order.
    live.clear();
    for (StepId sid : h.object_order[o]) {
      const Step* s = &h.steps[sid];
      if (!excluded(s->exec)) live.push_back(s);
    }
    for (size_t i = 0; i < live.size(); ++i) {
      const Step& first = *live[i];
      for (size_t j = i + 1; j < live.size(); ++j) {
        const Step& second = *live[j];
        if (first.exec == second.exec) continue;
        if (done.Contains(first.exec, second.exec)) continue;
        if (!idx.Incomparable(first.exec, second.exec)) continue;
        // Symmetric closure is NOT taken: the edge reflects that `second`
        // cannot be moved before `first`, which is exactly
        // conflicts(first, second) in Definition 3's order-sensitive sense.
        if (h.StepConflicts(first, second)) {
          done.Insert(first.exec, second.exec);
          add_edges_for_pair(first.exec, second.exec);
        }
      }
    }
  }

  // Type (b) edges: ◁-ordered message steps of a common ancestor.  Every
  // descendent of B(m) precedes every descendent of B(m2); descendants are
  // contiguous Euler-order slices, filtered to the committed projection
  // once per callee.
  std::vector<std::vector<ExecId>> desc_cache(n);
  std::vector<uint8_t> desc_cached(n, 0);
  auto committed_descendants = [&](ExecId e) -> const std::vector<ExecId>& {
    if (!desc_cached[e]) {
      desc_cached[e] = 1;
      auto& out = desc_cache[e];
      for (ExecId f : idx.DescendantsOf(e)) {
        if (!excluded(f)) out.push_back(f);
      }
    }
    return desc_cache[e];
  };

  std::vector<const Step*> msgs;
  for (const MethodExecution& e : h.executions) {
    if (excluded(e.id)) continue;
    msgs.clear();
    for (StepId si : e.steps) {
      const Step& m = h.steps[si];
      if (m.kind == StepKind::kMessage && !excluded(m.callee)) {
        msgs.push_back(&m);
      }
    }
    for (const Step* m : msgs) {
      for (const Step* m2 : msgs) {
        if (m->po_index >= m2->po_index) continue;
        for (ExecId f : committed_descendants(m->callee)) {
          for (ExecId f2 : committed_descendants(m2->callee)) {
            g.AddEdge(f, f2);
          }
        }
      }
    }
  }

  return g;
}

}  // namespace objectbase::model
