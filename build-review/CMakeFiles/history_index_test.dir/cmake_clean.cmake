file(REMOVE_RECURSE
  "CMakeFiles/history_index_test.dir/tests/history_index_test.cc.o"
  "CMakeFiles/history_index_test.dir/tests/history_index_test.cc.o.d"
  "history_index_test"
  "history_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
