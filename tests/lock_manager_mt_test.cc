// Multithreaded LockManager tests for the striped parking overhaul:
//   * the acceptance invariants — steady-state Acquire on an already-cached
//     object takes zero global (registry) locks, and an uncontended grant
//     wakes no waiters;
//   * targeted wakeups — a release signals only requests whose conflict
//     mask cleared, and no covered scenario ever rides the 250 ms safety
//     net;
//   * shared/exclusive whole-object modes with upgrade handling (the
//     honest Gemstone baseline), including the mutual-upgrade deadlock;
//   * parking stress under contention (the TSan job runs this suite).
#include "src/cc/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/adt/bank_account_adt.h"
#include "src/adt/counter_adt.h"
#include "src/adt/register_adt.h"
#include "src/common/rng.h"
#include "src/runtime/object.h"
#include "src/runtime/txn.h"

namespace objectbase::cc {
namespace {

rt::Object MakeRegisterObject(uint32_t id = 0) {
  return rt::Object(id, "reg" + std::to_string(id), adt::MakeRegisterSpec(0));
}

LockManager::Request OpReq(const rt::Object& obj, const std::string& op,
                           Args args = {}) {
  LockManager::Request r;
  r.op = obj.spec().FindOp(op);
  r.args = std::move(args);
  return r;
}

LockManager::Request SharedReq() {
  LockManager::Request r;
  r.shared = true;
  return r;
}

LockManager::Request ExclReq() {
  LockManager::Request r;
  r.exclusive = true;
  return r;
}

// --- acceptance invariants --------------------------------------------------

TEST(LockManagerParkingTest, SteadyStateAcquireTakesNoGlobalLock) {
  LockManager lm;
  rt::Object obj = MakeRegisterObject();
  rt::TxnNode t1(1, nullptr, UINT32_MAX, "T1");
  // First touch resolves the table (may allocate a chunk under the global
  // registry mutex) and caches the handle on the object.
  ASSERT_EQ(lm.Acquire(t1, obj, OpReq(obj, "write", {1})),
            LockManager::Outcome::kGranted);
  lm.ReleaseSubtree(t1);
  const uint64_t global_before = LockTableMutexAcquisitions().load();
  for (int i = 0; i < 200; ++i) {
    rt::TxnNode t(100 + i, nullptr, UINT32_MAX, "T");
    ASSERT_EQ(lm.Acquire(t, obj, OpReq(obj, "write", {i})),
              LockManager::Outcome::kGranted);
    ASSERT_EQ(lm.TryAcquire(t, obj, OpReq(obj, "read")),
              LockManager::TryOutcome::kGranted);
    lm.ReleaseSubtree(t);
  }
  EXPECT_EQ(LockTableMutexAcquisitions().load(), global_before)
      << "steady-state Acquire/TryAcquire touched the global table registry";
}

TEST(LockManagerParkingTest, UncontendedGrantWakesNoWaiters) {
  LockManager lm;
  rt::Object obj = MakeRegisterObject();
  rt::TxnNode t1(1, nullptr, UINT32_MAX, "T1");
  rt::TxnNode t2(2, nullptr, UINT32_MAX, "T2");
  const uint64_t wakeups_before = LockWaiterWakeups().load();
  // Commuting grants from two transactions plus releases: nothing ever
  // blocks, so nothing may ever be signalled.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(lm.Acquire(t1, obj, OpReq(obj, "read")),
              LockManager::Outcome::kGranted);
    ASSERT_EQ(lm.Acquire(t2, obj, OpReq(obj, "read")),
              LockManager::Outcome::kGranted);
    lm.ReleaseSubtree(t1);
    lm.ReleaseSubtree(t2);
  }
  EXPECT_EQ(LockWaiterWakeups().load(), wakeups_before)
      << "an uncontended grant/release cycle signalled a waiter";
}

TEST(LockManagerParkingTest, ReleaseWakesOnlyConflictingWaiter) {
  LockManager lm;
  rt::Object hot = MakeRegisterObject(0);
  rt::Object other = MakeRegisterObject(1);
  rt::TxnNode holder_hot(1, nullptr, UINT32_MAX, "H1");
  rt::TxnNode holder_other(2, nullptr, UINT32_MAX, "H2");
  rt::TxnNode waiter_hot(3, nullptr, UINT32_MAX, "W1");
  rt::TxnNode waiter_other(4, nullptr, UINT32_MAX, "W2");
  ASSERT_EQ(lm.Acquire(holder_hot, hot, OpReq(hot, "write", {1})),
            LockManager::Outcome::kGranted);
  ASSERT_EQ(lm.Acquire(holder_other, other, OpReq(other, "write", {1})),
            LockManager::Outcome::kGranted);
  std::atomic<int> granted{0};
  std::thread w1([&]() {
    lm.NoteRunning(ThisThreadKey(), &waiter_hot);
    EXPECT_EQ(lm.Acquire(waiter_hot, hot, OpReq(hot, "read")),
              LockManager::Outcome::kGranted);
    granted.fetch_add(1);
    lm.NoteFinished(ThisThreadKey());
  });
  std::thread w2([&]() {
    lm.NoteRunning(ThisThreadKey(), &waiter_other);
    EXPECT_EQ(lm.Acquire(waiter_other, other, OpReq(other, "read")),
              LockManager::Outcome::kGranted);
    granted.fetch_add(1);
    lm.NoteFinished(ThisThreadKey());
  });
  // Let both threads register and park (past the spin phase).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(granted.load(), 0);
  const uint64_t wakeups_before = LockWaiterWakeups().load();
  lm.ReleaseSubtree(holder_hot);  // frees `hot` only
  w1.join();
  EXPECT_EQ(granted.load(), 1);
  // Exactly one signal: the conflicting waiter on `hot`.  The waiter on
  // `other` (a different table) must not have been poked.
  EXPECT_EQ(LockWaiterWakeups().load(), wakeups_before + 1);
  lm.ReleaseSubtree(holder_other);
  w2.join();
  EXPECT_EQ(granted.load(), 2);
  lm.ReleaseSubtree(waiter_hot);
  lm.ReleaseSubtree(waiter_other);
  EXPECT_EQ(lm.LockCount(), 0u);
}

TEST(LockManagerParkingTest, TransferToParentWakesBlockedSibling) {
  LockManager lm;
  rt::Object obj = MakeRegisterObject();
  rt::TxnNode top(1, nullptr, UINT32_MAX, "T");
  rt::TxnNode c1(2, &top, 0, "m1");
  rt::TxnNode c2(3, &top, 0, "m2");
  ASSERT_EQ(lm.Acquire(c1, obj, OpReq(obj, "write", {1})),
            LockManager::Outcome::kGranted);
  std::atomic<bool> granted{false};
  std::thread sibling([&]() {
    lm.NoteRunning(ThisThreadKey(), &c2);
    EXPECT_EQ(lm.Acquire(c2, obj, OpReq(obj, "write", {2})),
              LockManager::Outcome::kGranted);
    granted.store(true);
    lm.NoteFinished(ThisThreadKey());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());
  // Rule 5: c1 commits, its lock passes to the parent — an ancestor of c2,
  // so c2 becomes grantable although the conflict MASK did not change.
  // This exercises the wake-all-on-inheritance rule.
  lm.TransferToParent(c1);
  sibling.join();
  EXPECT_TRUE(granted.load());
}

// --- shared/exclusive whole-object modes ------------------------------------

TEST(LockManagerSharedTest, SharedCommutesSharedBlocksExclusive) {
  LockManager lm;
  rt::Object obj = MakeRegisterObject();
  rt::TxnNode t1(1, nullptr, UINT32_MAX, "T1");
  rt::TxnNode t2(2, nullptr, UINT32_MAX, "T2");
  rt::TxnNode t3(3, nullptr, UINT32_MAX, "T3");
  ASSERT_EQ(lm.Acquire(t1, obj, SharedReq()), LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.TryAcquire(t2, obj, SharedReq()),
            LockManager::TryOutcome::kGranted);
  EXPECT_EQ(lm.TryAcquire(t3, obj, ExclReq()),
            LockManager::TryOutcome::kWouldBlock);
  // Shared also conservatively blocks operation-class locks (a whole-object
  // reader must not interleave with semantic writers).
  EXPECT_EQ(lm.TryAcquire(t3, obj, OpReq(obj, "write", {1})),
            LockManager::TryOutcome::kWouldBlock);
  // Re-acquisition by the same owner is deduplicated.
  EXPECT_EQ(lm.Acquire(t1, obj, SharedReq()), LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.LockCount(), 2u);
}

TEST(LockManagerSharedTest, UpgradeWaitsForOtherSharedHolders) {
  LockManager lm;
  rt::Object obj = MakeRegisterObject();
  rt::TxnNode t1(1, nullptr, UINT32_MAX, "T1");
  rt::TxnNode t2(2, nullptr, UINT32_MAX, "T2");
  ASSERT_EQ(lm.Acquire(t1, obj, SharedReq()), LockManager::Outcome::kGranted);
  ASSERT_EQ(lm.Acquire(t2, obj, SharedReq()), LockManager::Outcome::kGranted);
  // t1's own shared entry never blocks its upgrade (rule 2); t2's does.
  EXPECT_EQ(lm.TryAcquire(t1, obj, ExclReq()),
            LockManager::TryOutcome::kWouldBlock);
  std::atomic<bool> upgraded{false};
  std::thread upgrader([&]() {
    lm.NoteRunning(ThisThreadKey(), &t1);
    EXPECT_EQ(lm.Acquire(t1, obj, ExclReq()), LockManager::Outcome::kGranted);
    upgraded.store(true);
    lm.NoteFinished(ThisThreadKey());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(upgraded.load());
  lm.ReleaseSubtree(t2);  // the other shared holder drains -> upgrade wakes
  upgrader.join();
  EXPECT_TRUE(upgraded.load());
  // t1 now holds both its shared and its exclusive entry.
  EXPECT_EQ(lm.LockCount(), 2u);
  lm.ReleaseSubtree(t1);
  EXPECT_EQ(lm.LockCount(), 0u);
}

TEST(LockManagerSharedTest, MutualUpgradeIsADetectedDeadlock) {
  LockManager lm;
  rt::Object obj = MakeRegisterObject();
  rt::TxnNode t1(1, nullptr, UINT32_MAX, "T1");
  rt::TxnNode t2(2, nullptr, UINT32_MAX, "T2");
  std::atomic<int> deadlocks{0};
  std::atomic<int> grants{0};
  auto upgrade = [&](rt::TxnNode& txn) {
    lm.NoteRunning(ThisThreadKey(), &txn);
    EXPECT_EQ(lm.Acquire(txn, obj, SharedReq()),
              LockManager::Outcome::kGranted);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto r = lm.Acquire(txn, obj, ExclReq());
    (r == LockManager::Outcome::kDeadlock ? deadlocks : grants)++;
    lm.NoteFinished(ThisThreadKey());
    lm.ReleaseSubtree(txn);
  };
  std::thread a([&]() { upgrade(t1); });
  std::thread b([&]() { upgrade(t2); });
  a.join();
  b.join();
  // Both hold shared and want exclusive: a waits-for cycle.  One side must
  // be the victim; the survivor's upgrade is then granted.
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_EQ(deadlocks.load() + grants.load(), 2);
  EXPECT_EQ(lm.LockCount(), 0u);
}

// --- parking stress ---------------------------------------------------------

TEST(LockManagerParkingTest, ContendedStressGrantsAndDrains) {
  // 8 threads x conflicting/commuting ops over 4 objects, acquired in
  // ascending object order (no cross-object cycles, so every blocking
  // acquire must eventually be granted).  Exercises parking, targeted
  // wakeups and mask bookkeeping under real contention; the TSan CI job
  // runs this against the lock-free table registry and wake path.
  LockManager lm;
  constexpr int kObjects = 4;
  constexpr int kThreads = 8;
  constexpr int kIters = 150;
  std::vector<std::unique_ptr<rt::Object>> objs;  // Object is not movable
  objs.reserve(kObjects);
  for (int i = 0; i < kObjects; ++i) {
    objs.push_back(std::make_unique<rt::Object>(static_cast<uint32_t>(i),
                                                "o" + std::to_string(i),
                                                adt::MakeCounterSpec(0)));
  }
  std::atomic<uint64_t> next_uid{1};
  std::atomic<int> granted_txns{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(77 + t);
      for (int i = 0; i < kIters; ++i) {
        rt::TxnNode txn(next_uid.fetch_add(1), nullptr, UINT32_MAX, "T");
        lm.NoteRunning(ThisThreadKey(), &txn);
        int first = static_cast<int>(rng.Uniform(kObjects));
        int count = 1 + static_cast<int>(rng.Uniform(kObjects - first));
        bool ok = true;
        for (int o = first; o < first + count; ++o) {
          const char* op = rng.Bernoulli(0.5) ? "add" : "get";
          auto r = lm.Acquire(txn, *objs[o], OpReq(*objs[o], op, {1}));
          // Ascending acquisition order: deadlock is impossible.
          EXPECT_EQ(r, LockManager::Outcome::kGranted);
          ok = ok && r == LockManager::Outcome::kGranted;
        }
        if (ok) granted_txns.fetch_add(1);
        lm.NoteFinished(ThisThreadKey());
        lm.ReleaseSubtree(txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(granted_txns.load(), kThreads * kIters);
  EXPECT_EQ(lm.LockCount(), 0u);
}

TEST(LockManagerParkingTest, SharedExclusiveStressMT) {
  // Readers take shared whole-object locks, writers exclusive, on one hot
  // object — the Gemstone shape.  Deadlock is impossible (single object,
  // no upgrades), so every acquire must be granted.
  LockManager lm;
  rt::Object obj(0, "hot", adt::MakeBankAccountSpec(1000));
  constexpr int kThreads = 6;
  constexpr int kIters = 200;
  std::atomic<uint64_t> next_uid{1};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(911 + t);
      for (int i = 0; i < kIters; ++i) {
        rt::TxnNode txn(next_uid.fetch_add(1), nullptr, UINT32_MAX, "T");
        lm.NoteRunning(ThisThreadKey(), &txn);
        auto r = lm.Acquire(txn, obj,
                            rng.Bernoulli(0.7) ? SharedReq() : ExclReq());
        if (r != LockManager::Outcome::kGranted) failures.fetch_add(1);
        lm.NoteFinished(ThisThreadKey());
        lm.ReleaseSubtree(txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(lm.LockCount(), 0u);
}

}  // namespace
}  // namespace objectbase::cc
