// Optimistic inter-object certification — the Section 6 trade-off point.
//
// "There are techniques that resemble certifiers (or 'optimistic'
// schedulers) in conventional database concurrency control which favour
// (ii) [unrestricted intra-object synchronisation] at the expense of (i)
// [communication] — and the increased danger of scheduling errors
// requiring abortions."
//
// Objects apply operations immediately (serialised per object only by the
// apply mutex) and report every conflict between incomparable executions:
//   * cross-top-level conflicts become edges in the shared DependencyGraph;
//     a commit is certified only if the transaction lies on no dependency
//     cycle (Theorem 2 applied at commit time) and all its predecessors
//     committed;
//   * conflicts between incomparable executions INSIDE one top-level
//     transaction feed the per-top sibling graph, whose acyclicity is
//     Theorem 5's condition (b); a cycle vetoes the commit.
#ifndef OBJECTBASE_CC_CERT_CONTROLLER_H_
#define OBJECTBASE_CC_CERT_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/cc/controller.h"
#include "src/cc/dependency_graph.h"

namespace objectbase::rt {
class Recorder;
}  // namespace objectbase::rt

namespace objectbase::cc {

class WaitsForGraph;

/// Process-wide count of EXCLUSIVE state_mu acquisitions on the certifier's
/// step path (the *MutexAcquisitions invariant-counter style).  Recorded or
/// not, crabbing B-tree point ops must take the SHARED latch — the apply
/// order comes from the journal position reserved at the tree's internal
/// linearization point — so protocol_cert_test pins this counter's delta to
/// zero across such runs.  Exclusive applies (plain specs, exclusive_apply
/// scans) bump it.
std::atomic<uint64_t>& CertStepExclusiveAcquisitions();

class CertController : public Controller {
 public:
  /// `fold_threshold`: journal-GC cadence (fold at threshold, then every
  /// threshold/2 entries); 0 disables folding — tests use it to pin the
  /// zero-journal-mutex steady state.
  CertController(rt::Recorder& recorder, Granularity granularity,
                 size_t fold_threshold = 64);

  const char* name() const override { return "CERT"; }

  void OnTopBegin(rt::TxnNode& top) override;
  OpOutcome ExecuteLocal(rt::TxnNode& txn, rt::Object& obj,
                         const adt::OpDescriptor& op,
                         const Args& args) override;
  void OnChildCommit(rt::TxnNode& child) override;
  bool OnTopCommit(rt::TxnNode& top, AbortReason* reason) override;
  void OnAbort(rt::TxnNode& node) override;
  void OnTopFinished(rt::TxnNode& top) override;

  bool SupportsPartialAbort() const override { return false; }
  bool RollbackByRebuild() const override { return true; }

  DependencyGraph& deps() { return deps_; }

  /// MIXED only: durability commit-waits are declared in the composite
  /// lock manager's waits-for graph (see MixedController::AttachWal), the
  /// same visibility PR 5 gave the certifier's commit-waits.  Standalone
  /// CERT has no lock waits to compose with and leaves this null.
  void SetDurabilityWaitGraph(WaitsForGraph* wfg) { durability_wfg_ = wfg; }

  /// One intra-top conflict observation: the earlier and later execution's
  /// ancestor chains (self first).  Lifted to sibling edges at commit.
  struct SiblingEdge {
    std::vector<uint64_t> from_chain;
    std::vector<uint64_t> to_chain;
  };

  /// Appends `top_uid`'s buffered sibling observations to `out`.  The
  /// sharded commit path uses this to certify the UNION of a cross-shard
  /// top's per-shard sibling graphs (Theorem 5 condition (b) is a property
  /// of the whole transaction, not of any one shard's slice).
  void AppendSiblingEdges(uint64_t top_uid, std::vector<SiblingEdge>& out);

  /// Theorem 5 condition (b): lifts each observation to the pair of
  /// executions just below their least common ancestor and cycle-checks
  /// the resulting sibling graph.  Pure function of the edge list.
  static bool EdgesAcyclic(const std::vector<SiblingEdge>& edges);

 private:
  bool SiblingGraphAcyclic(uint64_t top_uid);

  // The sibling-edge buffer is striped by top uid so the certifier's last
  // global mutex scales with the topology: two tops only contend when they
  // hash to the same stripe, and a top's own appends are uncontended.
  static constexpr size_t kSiblingStripes = 16;
  struct SiblingStripe {
    std::mutex mu;
    std::map<uint64_t, std::vector<SiblingEdge>> edges;  // by top uid
  };
  SiblingStripe& StripeFor(uint64_t top_uid) {
    return sibling_stripes_[top_uid & (kSiblingStripes - 1)];
  }

  rt::Recorder& recorder_;
  Granularity granularity_;
  size_t fold_threshold_;
  WaitsForGraph* durability_wfg_ = nullptr;
  DependencyGraph deps_;
  SiblingStripe sibling_stripes_[kSiblingStripes];
};

}  // namespace objectbase::cc

#endif  // OBJECTBASE_CC_CERT_CONTROLLER_H_
