// HistoryIndex: the one-pass ancestry/abort precomputation must agree with
// the History struct's pointer-chasing reference implementation on every
// query, including Euler-slice descendant enumeration.
#include "src/model/history_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/adt/counter_adt.h"
#include "src/common/rng.h"
#include "tests/history_builder.h"

namespace objectbase::model {
namespace {

// A small fixed forest:
//   t0 ── a ── b
//      └─ c
//   t1 ── d
History MakeForest(ExecId* t0, ExecId* a, ExecId* b, ExecId* c, ExecId* t1,
                   ExecId* d) {
  HistoryBuilder hb;
  ObjectId ctr = hb.AddObject("ctr", adt::MakeCounterSpec(0));
  *t0 = hb.Top("t0");
  *a = hb.Child(*t0, ctr, "m");
  *b = hb.Child(*a, ctr, "m");
  *c = hb.Child(*t0, ctr, "m");
  *t1 = hb.Top("t1");
  *d = hb.Child(*t1, ctr, "m");
  hb.Local(*b, ctr, "add", {1});
  hb.Local(*d, ctr, "add", {1});
  return hb.Build();
}

TEST(HistoryIndexTest, AncestryMatchesHistory) {
  ExecId t0, a, b, c, t1, d;
  History h = MakeForest(&t0, &a, &b, &c, &t1, &d);
  HistoryIndex idx(h);
  const size_t n = h.executions.size();
  for (ExecId x = 0; x < n; ++x) {
    for (ExecId y = 0; y < n; ++y) {
      EXPECT_EQ(idx.IsAncestorOrSelf(x, y), h.IsAncestorOrSelf(x, y))
          << x << " vs " << y;
      EXPECT_EQ(idx.Incomparable(x, y), h.Incomparable(x, y))
          << x << " vs " << y;
      EXPECT_EQ(idx.Lca(x, y), h.Lca(x, y)) << x << " vs " << y;
    }
    EXPECT_EQ(static_cast<int>(idx.Depth(x)), h.Level(x));
    EXPECT_EQ(idx.Top(x), h.TopAncestor(x));
  }
}

TEST(HistoryIndexTest, CrossTreeQueries) {
  ExecId t0, a, b, c, t1, d;
  History h = MakeForest(&t0, &a, &b, &c, &t1, &d);
  HistoryIndex idx(h);
  EXPECT_TRUE(idx.Incomparable(b, d));
  EXPECT_EQ(idx.Lca(b, d), kNoExec);
  EXPECT_EQ(idx.Top(b), t0);
  EXPECT_EQ(idx.Top(d), t1);
}

TEST(HistoryIndexTest, DescendantSlices) {
  ExecId t0, a, b, c, t1, d;
  History h = MakeForest(&t0, &a, &b, &c, &t1, &d);
  HistoryIndex idx(h);
  auto as_sorted = [](HistoryIndex::Slice s) {
    std::vector<ExecId> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(as_sorted(idx.DescendantsOf(t0)),
            (std::vector<ExecId>{t0, a, b, c}));
  EXPECT_EQ(as_sorted(idx.DescendantsOf(a)), (std::vector<ExecId>{a, b}));
  EXPECT_EQ(as_sorted(idx.DescendantsOf(b)), (std::vector<ExecId>{b}));
  EXPECT_EQ(as_sorted(idx.DescendantsOf(t1)), (std::vector<ExecId>{t1, d}));
  EXPECT_EQ(idx.Preorder().size(), h.executions.size());
}

TEST(HistoryIndexTest, ChainBelowStopsAtLca) {
  ExecId t0, a, b, c, t1, d;
  History h = MakeForest(&t0, &a, &b, &c, &t1, &d);
  HistoryIndex idx(h);
  std::vector<ExecId> chain;
  // Chain of b strictly below lca(b, c) == t0: {b, a}.
  idx.ChainBelow(b, idx.Lca(b, c), chain);
  EXPECT_EQ(chain, (std::vector<ExecId>{b, a}));
  chain.clear();
  // Whole chain (stop == kNoExec): {b, a, t0}.
  idx.ChainBelow(b, kNoExec, chain);
  EXPECT_EQ(chain, (std::vector<ExecId>{b, a, t0}));
}

TEST(HistoryIndexTest, AbortClosure) {
  HistoryBuilder hb;
  ObjectId ctr = hb.AddObject("ctr", adt::MakeCounterSpec(0));
  ExecId top = hb.Top("t");
  ExecId mid = hb.Child(top, ctr, "m");
  ExecId leaf = hb.Child(mid, ctr, "m");
  ExecId sibling = hb.Child(top, ctr, "m");
  hb.MarkAborted(mid);  // leaf is only transitively aborted
  History h = hb.Build();
  HistoryIndex idx(h);
  EXPECT_FALSE(idx.EffectivelyAborted(top));
  EXPECT_TRUE(idx.EffectivelyAborted(mid));
  EXPECT_TRUE(idx.EffectivelyAborted(leaf));
  EXPECT_FALSE(idx.EffectivelyAborted(sibling));
  EXPECT_EQ(idx.EffectivelyAborted(leaf), h.EffectivelyAborted(leaf));
}

TEST(HistoryIndexTest, RandomisedAgreementWithHistory) {
  Rng rng(2026);
  for (int trial = 0; trial < 5; ++trial) {
    HistoryBuilder hb;
    ObjectId ctr = hb.AddObject("ctr", adt::MakeCounterSpec(0));
    std::vector<ExecId> execs;
    for (int t = 0; t < 3; ++t) execs.push_back(hb.Top("t"));
    for (int i = 0; i < 40; ++i) {
      ExecId parent = execs[rng.Uniform(execs.size())];
      execs.push_back(hb.Child(parent, ctr, "m"));
    }
    for (int i = 0; i < 5; ++i) {
      hb.MarkAborted(execs[rng.Uniform(execs.size())]);
    }
    History h = hb.Build();
    HistoryIndex idx(h);
    const size_t n = h.executions.size();
    for (ExecId x = 0; x < n; ++x) {
      EXPECT_EQ(idx.EffectivelyAborted(x), h.EffectivelyAborted(x));
      EXPECT_EQ(idx.Top(x), h.TopAncestor(x));
      for (ExecId y = 0; y < n; ++y) {
        ASSERT_EQ(idx.IsAncestorOrSelf(x, y), h.IsAncestorOrSelf(x, y))
            << "trial " << trial << ": " << x << " vs " << y;
        ASSERT_EQ(idx.Lca(x, y), h.Lca(x, y));
      }
      // The descendant slice is exactly the IsAncestorOrSelf set.
      auto slice = idx.DescendantsOf(x);
      std::vector<ExecId> got(slice.begin(), slice.end());
      std::sort(got.begin(), got.end());
      std::vector<ExecId> want;
      for (ExecId y = 0; y < n; ++y) {
        if (h.IsAncestorOrSelf(x, y)) want.push_back(y);
      }
      ASSERT_EQ(got, want);
    }
  }
}

}  // namespace
}  // namespace objectbase::model
