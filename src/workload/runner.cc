#include "src/workload/runner.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace objectbase::workload {

RunMetrics RunWorkload(rt::Executor& exec, const WorkloadSpec& spec) {
  if (spec.prepare) spec.prepare(exec);
  exec.ResetStats();
  RunMetrics metrics;
  if (spec.threads <= 0) return metrics;
  std::mutex agg_mu;
  std::vector<double> weights;
  weights.reserve(spec.mix.size());
  for (const TxnTemplate& t : spec.mix) weights.push_back(t.weight);

  // Start latch: workers are spawned first and parked; the clock starts
  // only once every worker is ready, and stops at the LAST transaction
  // completion (not after join + histogram merges).  Without this, short
  // sweeps charge thread-spawn and teardown time to the measured interval
  // and under-report throughput.
  std::mutex latch_mu;
  std::condition_variable latch_cv;
  int ready = 0;
  bool go = false;
  Stopwatch clock;  // Reset just before release, under latch_mu.
  std::atomic<uint64_t> last_done_ns{0};

  std::vector<std::thread> threads;
  threads.reserve(spec.threads);
  for (int t = 0; t < spec.threads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(spec.seed * 1315423911u + t * 2654435761u + 1);
      Histogram local_latency;
      uint64_t local_gave_up = 0;
      std::vector<double> w = weights;
      {
        std::unique_lock<std::mutex> l(latch_mu);
        ++ready;
        latch_cv.notify_all();
        latch_cv.wait(l, [&] { return go; });
      }
      for (uint64_t i = 0; i < spec.txns_per_thread; ++i) {
        const TxnTemplate& tmpl = spec.mix[rng.WeightedIndex(w)];
        rt::MethodFn body = tmpl.make(rng);
        Stopwatch txn_clock;
        rt::TxnResult r = exec.RunTransaction(tmpl.name, std::move(body));
        local_latency.Record(txn_clock.ElapsedNanos());
        if (!r.committed) ++local_gave_up;
      }
      // Stamp completion BEFORE the (serialised) histogram merge.
      uint64_t done = clock.ElapsedNanos();
      uint64_t seen = last_done_ns.load(std::memory_order_relaxed);
      while (seen < done && !last_done_ns.compare_exchange_weak(
                                seen, done, std::memory_order_relaxed)) {
      }
      std::lock_guard<std::mutex> g(agg_mu);
      metrics.latency_ns.Merge(local_latency);
      metrics.gave_up += local_gave_up;
    });
  }
  {
    std::unique_lock<std::mutex> l(latch_mu);
    latch_cv.wait(l, [&] { return ready == spec.threads; });
    clock.Reset();
    go = true;
  }
  latch_cv.notify_all();
  for (auto& th : threads) th.join();
  metrics.seconds = last_done_ns.load(std::memory_order_relaxed) / 1e9;

  const rt::Executor::Stats& s = exec.stats();
  metrics.committed = s.committed.load();
  metrics.aborted_attempts = s.aborted.load();
  metrics.deadlocks = s.AbortsFor(cc::AbortReason::kDeadlock);
  metrics.ts_rejects = s.AbortsFor(cc::AbortReason::kTimestampOrder);
  metrics.validation_fails = s.AbortsFor(cc::AbortReason::kValidation);
  metrics.cascades = s.AbortsFor(cc::AbortReason::kCascade) +
                     s.AbortsFor(cc::AbortReason::kDoomed);
  return metrics;
}

}  // namespace objectbase::workload
