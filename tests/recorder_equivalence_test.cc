// Differential harness for the lock-free leased Recorder.
//
// Two nets, per the house pattern (tests/journal_equivalence_test.cc):
//   * randomized SINGLE-THREAD API scripts drive the leased recorder and
//     the retained global-atomic ReferenceRecorder in lockstep and assert
//     BYTE-IDENTICAL snapshots — on one thread the leased raw stamps are a
//     linear extension of every recorded constraint, so the canonical
//     virtual times must collapse to exactly the reference's global stamps;
//   * multi-threaded (4/8 workers) executor runs with folding disabled
//     assert that each object's recorded step order equals its JOURNAL
//     POSITION order — the per-object order key is the journal position,
//     so the formal history's object order must reproduce, entry for
//     entry, what the journal says was applied.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/adt/btree_dictionary_adt.h"
#include "src/adt/counter_adt.h"
#include "src/adt/register_adt.h"
#include "src/common/rng.h"
#include "src/runtime/executor.h"
#include "src/runtime/journal.h"
#include "src/runtime/recorder.h"
#include "tests/reference_recorder.h"

namespace objectbase::rt {
namespace {

// --- part 1: randomized single-thread scripts ------------------------------

void ExpectIdentical(const model::History& a, const model::History& b,
                     uint64_t seed) {
  ASSERT_EQ(a.executions.size(), b.executions.size()) << "seed " << seed;
  for (size_t i = 0; i < a.executions.size(); ++i) {
    EXPECT_EQ(a.executions[i].id, b.executions[i].id) << "seed " << seed;
    EXPECT_EQ(a.executions[i].parent, b.executions[i].parent);
    EXPECT_EQ(a.executions[i].object, b.executions[i].object);
    EXPECT_EQ(a.executions[i].method, b.executions[i].method);
    EXPECT_EQ(a.executions[i].aborted, b.executions[i].aborted);
    EXPECT_EQ(a.executions[i].steps, b.executions[i].steps)
        << "seed " << seed << " exec " << i;
  }
  ASSERT_EQ(a.steps.size(), b.steps.size()) << "seed " << seed;
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].kind, b.steps[i].kind) << "seed " << seed;
    EXPECT_EQ(a.steps[i].exec, b.steps[i].exec);
    EXPECT_EQ(a.steps[i].po_index, b.steps[i].po_index);
    EXPECT_EQ(a.steps[i].object, b.steps[i].object);
    EXPECT_EQ(a.steps[i].op, b.steps[i].op);
    EXPECT_TRUE(a.steps[i].args == b.steps[i].args);
    EXPECT_TRUE(a.steps[i].ret == b.steps[i].ret);
    EXPECT_EQ(a.steps[i].callee, b.steps[i].callee);
    EXPECT_EQ(a.steps[i].start_seq, b.steps[i].start_seq)
        << "seed " << seed << " step " << i;
    EXPECT_EQ(a.steps[i].end_seq, b.steps[i].end_seq)
        << "seed " << seed << " step " << i;
  }
  EXPECT_EQ(a.object_order, b.object_order) << "seed " << seed;
}

// One open execution: its id (identical in both recorders by construction),
// the bookkeeping needed to emit its message step at close, and its po
// counter.
struct Frame {
  model::ExecId exec;
  model::ExecId parent;  // kNoExec for tops (no message step)
  uint32_t po_in_parent = 0;
  uint64_t start_seq = 0;
  uint32_t next_po = 0;
};

void RunScript(uint64_t seed) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  base.CreateObject("r", adt::MakeRegisterSpec(7));
  const uint32_t kObjects = 2;

  Recorder rec(/*enabled=*/true);
  ReferenceRecorder ref(/*enabled=*/true);
  rec.Reset(base);
  ref.Reset(base);

  Rng rng(seed);
  // Lockstep draw: both counters must hand out the same stamp — the leased
  // path's per-thread batching must be invisible on one thread.
  auto draw = [&]() {
    const uint64_t a = rec.NextSeq();
    const uint64_t b = ref.NextSeq();
    EXPECT_EQ(a, b) << "seed " << seed;
    return a;
  };
  // Per-object apply tickets: drawn in call order, as any real
  // single-threaded run draws them (order key order == seq order).
  std::vector<uint64_t> ticket(kObjects, 0);

  std::vector<Frame> stack;
  auto open_top = [&](int i) {
    const std::string name = "t" + std::to_string(i);
    const model::ExecId a =
        rec.BeginExecution(model::kNoExec, model::kEnvironmentObject, name);
    const model::ExecId b =
        ref.BeginExecution(model::kNoExec, model::kEnvironmentObject, name);
    EXPECT_EQ(a, b);
    stack.push_back(Frame{a, model::kNoExec});
  };
  auto close_frame = [&]() {
    Frame f = stack.back();
    stack.pop_back();
    if (f.parent == model::kNoExec) return;  // top: no message step
    const uint64_t end = draw();
    rec.RecordMessageStep(f.parent, f.po_in_parent, f.exec, f.start_seq, end);
    ref.RecordMessageStep(f.parent, f.po_in_parent, f.exec, f.start_seq, end);
    if (rng.Bernoulli(0.15)) {
      rec.MarkAborted(f.exec);
      ref.MarkAborted(f.exec);
    }
  };

  int tops = 0;
  open_top(tops++);
  const int kActions = 120;
  for (int step = 0; step < kActions; ++step) {
    const uint64_t pick = rng.Uniform(10);
    if (pick < 3 && stack.size() < 6) {
      // Open a child of the innermost open execution.
      Frame& parent = stack.back();
      const uint32_t obj = static_cast<uint32_t>(rng.Uniform(kObjects));
      const uint32_t po = parent.next_po++;
      const uint64_t start = draw();
      const std::string method = "m" + std::to_string(step);
      const model::ExecId a = rec.BeginExecution(parent.exec, obj, method);
      const model::ExecId b = ref.BeginExecution(parent.exec, obj, method);
      EXPECT_EQ(a, b);
      stack.push_back(Frame{a, parent.exec, po, start});
    } else if (pick < 8) {
      // A local step in the innermost open execution.
      Frame& f = stack.back();
      const uint32_t obj = static_cast<uint32_t>(rng.Uniform(kObjects));
      const auto& spec = *base.Get(obj).spec_ptr();
      const adt::OpId op =
          static_cast<adt::OpId>(rng.Uniform(spec.NumOps()));
      const Args args = {Value(rng.Range(-5, 5))};
      const Value ret = rng.Bernoulli(0.5) ? Value(rng.Range(0, 9))
                                           : Value::None();
      const uint32_t po = f.next_po++;
      const uint64_t seq = draw();
      const uint64_t key = ++ticket[obj];
      rec.RecordLocalStep(f.exec, po, obj, op, args, ret, key, seq);
      ref.RecordLocalStep(f.exec, po, obj, op, args, ret, key, seq);
    } else if (stack.size() > 1 || (stack.size() == 1 && tops < 5)) {
      // Close the innermost execution; reopen a top if we closed the last.
      close_frame();
      if (stack.empty()) open_top(tops++);
    }
  }
  while (!stack.empty()) close_frame();

  ExpectIdentical(rec.Snapshot(), ref.Snapshot(), seed);
}

TEST(RecorderEquivalenceTest, RandomSingleThreadScriptsAreByteIdentical) {
  for (uint64_t seed = 1; seed <= 40; ++seed) RunScript(seed);
}

// --- part 2: per-object order == journal position order --------------------

// Runs a conflicting multi-threaded workload (counters + register + a
// crabbing B-tree dictionary) recorded, with journal folding disabled, and
// asserts each journaled object's recorded per-object step sequence equals
// the journal's position-order entry sequence, (op, args, ret) for
// (op, args, ret) — aborted entries included on both sides (the recorder
// keeps aborted executions' steps; the journal keeps their marked entries).
void RunJournalOrderAgreement(Protocol protocol, int threads, uint64_t seed) {
  ObjectBase base;
  const int kCounters = 2;
  for (int i = 0; i < kCounters; ++i) {
    base.CreateObject("c" + std::to_string(i), adt::MakeCounterSpec(0));
  }
  base.CreateObject("r", adt::MakeRegisterSpec(0));
  base.CreateObject("d", adt::MakeBTreeDictionarySpec(4));
  Executor exec(base, {.protocol = protocol,
                       .granularity = cc::Granularity::kStep,
                       .record = true,
                       .journal_fold_threshold = 0});

  std::vector<MethodRef> add;
  for (int i = 0; i < kCounters; ++i) {
    add.push_back(exec.Resolve("c" + std::to_string(i), "add"));
    ASSERT_TRUE(add.back().valid());
  }
  MethodRef incr = exec.Resolve("r", "increment");
  MethodRef put = exec.Resolve("d", "put");
  MethodRef get = exec.Resolve("d", "get");
  MethodRef del = exec.Resolve("d", "del");
  ASSERT_TRUE(incr.valid());
  ASSERT_TRUE(put.valid() && get.valid() && del.valid());

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(seed + t * 977);
      for (int i = 0; i < 25; ++i) {
        const int64_t k = rng.Range(0, 31);
        const int64_t v = rng.Range(0, 99);
        const int c = static_cast<int>(rng.Uniform(kCounters));
        exec.RunTransaction("w", [&](MethodCtx& txn) {
          txn.Invoke(add[c], {int64_t{1}});
          txn.Invoke(put, {k, v});
          if (rng.Bernoulli(0.3)) txn.Invoke(del, {k + 1});
          txn.Invoke(get, {k});
          if (rng.Bernoulli(0.4)) txn.Invoke(incr, {int64_t{1}});
          return Value();
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  model::History h = exec.recorder().Snapshot();

  using Tuple = std::tuple<std::string, Args, Value>;
  for (uint32_t obj = 0; obj < base.size(); ++obj) {
    const Object& o = base.Get(obj);
    std::vector<Tuple> journal_order;
    {
      AppliedJournal::Scan scan(o.journal());
      scan.ForEachLive(scan.end_pos(), [&](const AppliedJournal::Entry& e) {
        journal_order.emplace_back(std::string(o.spec().OpAt(e.op_id).name),
                                   e.args, e.ret);
        return true;
      });
    }
    if (journal_order.empty()) continue;  // non-journaled protocol/object
    std::vector<Tuple> recorded_order;
    for (model::StepId s : h.object_order[obj]) {
      recorded_order.emplace_back(h.steps[s].op, h.steps[s].args,
                                  h.steps[s].ret);
    }
    ASSERT_EQ(recorded_order.size(), journal_order.size())
        << ProtocolName(protocol) << " object " << o.name();
    for (size_t i = 0; i < journal_order.size(); ++i) {
      EXPECT_EQ(std::get<0>(recorded_order[i]), std::get<0>(journal_order[i]))
          << ProtocolName(protocol) << " " << o.name() << " pos " << i;
      EXPECT_TRUE(std::get<1>(recorded_order[i]) ==
                  std::get<1>(journal_order[i]));
      EXPECT_TRUE(std::get<2>(recorded_order[i]) ==
                  std::get<2>(journal_order[i]));
    }
  }
}

TEST(RecorderEquivalenceTest, NtoJournalOrder4Threads) {
  RunJournalOrderAgreement(Protocol::kNto, 4, 11);
}
TEST(RecorderEquivalenceTest, NtoJournalOrder8Threads) {
  RunJournalOrderAgreement(Protocol::kNto, 8, 23);
}
TEST(RecorderEquivalenceTest, CertJournalOrder4Threads) {
  RunJournalOrderAgreement(Protocol::kCert, 4, 37);
}
TEST(RecorderEquivalenceTest, CertJournalOrder8Threads) {
  RunJournalOrderAgreement(Protocol::kCert, 8, 41);
}

}  // namespace
}  // namespace objectbase::rt
