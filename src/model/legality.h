// Legality checking, Definition 6.
//
// A quadruple (E, <, B, S) is a legal history iff
//   (1) B is 1-1, no execution is its own proper ancestor, and every
//       top-level execution belongs to the environment object;
//   (2) < contains every execution's program order ◁ (2a), orders every
//       conflicting pair of local steps (2b), and is inherited by
//       descendents (2c);
//   (3) some <-consistent topological sort of each object's local steps is
//       legal on the object's initial state (every step returns what rho
//       says it should).
//
// The checker validates all three against the recorded representation.
#ifndef OBJECTBASE_MODEL_LEGALITY_H_
#define OBJECTBASE_MODEL_LEGALITY_H_

#include <string>

#include "src/model/history.h"

namespace objectbase::model {

struct LegalityResult {
  bool legal = false;
  std::string error;  ///< Empty when legal.
};

/// Checks Definition 6 on `h`.  `committed_only` applies the failure
/// semantics projection before checking condition 3 (an aborted execution's
/// steps must be removable without perturbing the remaining computation —
/// Section 3, requirement (a)).
LegalityResult CheckLegal(const History& h, bool committed_only = false);

}  // namespace objectbase::model

#endif  // OBJECTBASE_MODEL_LEGALITY_H_
