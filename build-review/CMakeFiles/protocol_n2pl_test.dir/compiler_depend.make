# Empty compiler generated dependencies file for protocol_n2pl_test.
# This may be replaced when dependencies are built.
