// NTO end-to-end correctness (Theorem 4 made executable) plus the
// timestamp-specific behaviours: rule-1 rejections, watermark GC.
#include <gtest/gtest.h>

#include "src/cc/nto_controller.h"
#include "tests/protocol_harness.h"

namespace objectbase::rt {
namespace {

constexpr Protocol kP = Protocol::kNto;

TEST(NtoProtocolTest, BankingOperationGranularity) {
  RunBankingScenario(kP, cc::Granularity::kOperation, 4, 40, 4, 11);
}

TEST(NtoProtocolTest, BankingStepGranularity) {
  RunBankingScenario(kP, cc::Granularity::kStep, 4, 40, 4, 12);
}

TEST(NtoProtocolTest, BankingWithParallelDeposit) {
  RunBankingScenario(kP, cc::Granularity::kStep, 3, 25, 4, 13,
                     /*parallel_deposit=*/true);
}

TEST(NtoProtocolTest, HotCounter) {
  RunCounterScenario(kP, cc::Granularity::kStep, 6, 60, 14);
}

TEST(NtoProtocolTest, QueueStepMode) {
  RunQueueScenario(kP, cc::Granularity::kStep, 4, 50, 15);
}

TEST(NtoProtocolTest, QueueOperationMode) {
  RunQueueScenario(kP, cc::Granularity::kOperation, 4, 50, 16);
}

TEST(NtoProtocolTest, MixedStress) {
  RunMixedStressScenario(kP, cc::Granularity::kStep, 4, 40, 17);
}

TEST(NtoProtocolTest, LateConflictingStepIsRejected) {
  // Deterministic rule-1 rejection: T_late is created first (smaller hts)
  // but issues its conflicting step after T_early's: NTO must abort the
  // attempt and the retry (fresh, larger timestamp) must succeed.
  ObjectBase base;
  base.CreateObject("r", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = kP,
                       .granularity = cc::Granularity::kOperation});
  std::atomic<int> phase{0};
  std::thread late([&]() {
    exec.RunTransaction("late", [&](MethodCtx& txn) -> Value {
      // First attempt: wait until the other transaction has written.
      if (phase.load() == 0) {
        phase.store(1);
        while (phase.load() != 2) std::this_thread::yield();
      }
      txn.Invoke("r", "write", {1});
      return Value();
    });
  });
  while (phase.load() != 1) std::this_thread::yield();
  exec.RunTransaction("early", [&](MethodCtx& txn) -> Value {
    txn.Invoke("r", "write", {2});
    return Value();
  });
  phase.store(2);
  late.join();
  EXPECT_GE(exec.stats().AbortsFor(cc::AbortReason::kTimestampOrder), 1u);
  VerifyHistory(exec, "NTO late-step scenario");
}

TEST(NtoProtocolTest, WatermarkGcBoundsRememberedSteps) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = kP, .record = false, .nto_gc = true});
  for (int i = 0; i < 2000; ++i) {
    exec.RunTransaction("t", [](MethodCtx& txn) {
      txn.Invoke("c", "add", {1});
      return Value();
    });
  }
  std::vector<Object*> objects{base.Find("c")};
  size_t remembered = cc::NtoController::RememberedEntries(objects);
  // Without GC this would be ~4000 entries (one per local step: the add
  // plus nothing else) — with the watermark it stays small.
  EXPECT_LT(remembered, 512u);
}

TEST(NtoProtocolTest, WithoutGcRememberedStepsGrow) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = kP, .record = false, .nto_gc = false});
  for (int i = 0; i < 500; ++i) {
    exec.RunTransaction("t", [](MethodCtx& txn) {
      txn.Invoke("c", "add", {1});
      return Value();
    });
  }
  std::vector<Object*> objects{base.Find("c")};
  EXPECT_GE(cc::NtoController::RememberedEntries(objects), 500u);
}

// The registry acceptance invariant, end-to-end through the executor: a
// steady-state conflict-free step performs ZERO mutex acquisitions in the
// DependencyGraph — the per-step doom poll is one atomic load, and the GC
// cadence poll is an atomic journal-length read.  Registry locking is a
// small constant per TRANSACTION (register + commit + retire), asserted by
// running transactions whose step count dwarfs that constant.
TEST(NtoProtocolTest, RegistryStepPathIsMutexFree) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = kP, .record = false});
  constexpr int kSteps = 100;
  ASSERT_TRUE(exec.DefineMethod("c", "bump_many", [](MethodCtx& m) -> Value {
    const adt::OpDescriptor* add = m.ResolveLocal("add");
    for (int i = 0; i < kSteps; ++i) m.Local(*add, {1});
    return Value();
  }));
  MethodRef bump = exec.Resolve("c", "bump_many");
  constexpr int kTxns = 20;
  const uint64_t before = cc::DepGraphMutexAcquisitions().load();
  for (int i = 0; i < kTxns; ++i) {
    TxnResult r = exec.RunTransaction("t", [&](MethodCtx& txn) {
      return txn.Invoke(bump);
    });
    ASSERT_TRUE(r.committed);
  }
  const uint64_t locks = cc::DepGraphMutexAcquisitions().load() - before;
  EXPECT_LE(locks, kTxns * 8u)
      << "registry locking scales with steps, not transactions";
}

// The journal acceptance invariant, end-to-end through the executor: the
// steady-state step path — append, conflict scan, GC cadence poll —
// performs ZERO mutex acquisitions in the applied journal.  The journal's
// only mutex guards fold/GC bookkeeping, so with folding disabled the
// count must not move at all, across thousands of steps and multiple
// chunk allocations (chunk growth is CAS-linked, not locked) — the PR-4
// SteadyStateAcquireTakesNoGlobalLock pattern applied to the journal.
TEST(NtoProtocolTest, StepPathTakesNoJournalMutex) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = kP,
                       .record = false,
                       .journal_fold_threshold = 0});
  constexpr int kSteps = 200;
  ASSERT_TRUE(exec.DefineMethod("c", "bump_many", [](MethodCtx& m) -> Value {
    const adt::OpDescriptor* add = m.ResolveLocal("add");
    for (int i = 0; i < kSteps; ++i) m.Local(*add, {1});
    return Value();
  }));
  MethodRef bump = exec.Resolve("c", "bump_many");
  // Warm up one transaction (first-touch paths), then measure.
  ASSERT_TRUE(exec.RunTransaction("warm", [&](MethodCtx& txn) {
    return txn.Invoke(bump);
  }).committed);
  const uint64_t before = JournalMutexAcquisitions().load();
  for (int i = 0; i < 20; ++i) {
    TxnResult r = exec.RunTransaction("t", [&](MethodCtx& txn) {
      return txn.Invoke(bump);
    });
    ASSERT_TRUE(r.committed);
  }
  EXPECT_EQ(JournalMutexAcquisitions().load() - before, 0u)
      << "the NTO step path took a journal mutex";
}

// With folding enabled, journal locking is bounded by the folds (one
// acquisition each), never by the steps.
TEST(NtoProtocolTest, JournalLockingScalesWithFoldsNotSteps) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = kP, .record = false});
  const uint64_t before = JournalMutexAcquisitions().load();
  constexpr int kTxns = 500;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(exec.RunTransaction("t", [](MethodCtx& txn) {
      txn.Invoke("c", "add", {1});
      txn.Invoke("c", "add", {1});
      return Value();
    }).committed);
  }
  const uint64_t locks = JournalMutexAcquisitions().load() - before;
  // 1000 steps; folds fire every threshold/2 = 32 entries past 64.
  EXPECT_LE(locks, 1000u / 32u + 2u)
      << "journal locking scales with steps, not folds";
}

TEST(NtoProtocolTest, SequentialSiblingsNeverSelfAbort) {
  // Rule 2 gives ◁-ordered messages increasing timestamps, so a purely
  // sequential nested transaction conflicts only in timestamp order with
  // itself — and kin are exempt from rule 1 anyway.  No aborts expected.
  ObjectBase base;
  base.CreateObject("r", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = kP});
  ASSERT_TRUE(exec.DefineMethod("r", "write_twice", [](MethodCtx& m) -> Value {
    m.Local("write", {1});
    m.Local("write", {2});
    m.Invoke("r", "write", {3});  // nested sibling-of-self message
    return Value();
  }));
  TxnResult r = exec.RunTransaction("t", [](MethodCtx& txn) {
    txn.Invoke("r", "write_twice");
    return txn.Invoke("r", "read");
  });
  ASSERT_TRUE(r.committed);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.ret, Value(3));
}

}  // namespace
}  // namespace objectbase::rt
