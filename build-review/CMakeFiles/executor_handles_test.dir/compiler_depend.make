# Empty compiler generated dependencies file for executor_handles_test.
# This may be replaced when dependencies are built.
