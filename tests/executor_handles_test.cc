// Interned-handle API tests: resolve-once semantics, equivalence with the
// string convenience path, and the dense OpId dispatch/conflict tables.
#include <gtest/gtest.h>

#include "src/adt/bag_adt.h"
#include "src/adt/bank_account_adt.h"
#include "src/adt/btree_dictionary_adt.h"
#include "src/adt/counter_adt.h"
#include "src/adt/directory_adt.h"
#include "src/adt/queue_adt.h"
#include "src/adt/register_adt.h"
#include "src/adt/set_adt.h"
#include "src/runtime/executor.h"
#include "src/workload/generators.h"
#include "src/workload/spec.h"

namespace objectbase::rt {
namespace {

TEST(HandlesTest, ResolveImplicitOpAndUnknowns) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = Protocol::kN2pl});

  MethodRef add = exec.Resolve("c", "add");
  ASSERT_TRUE(add.valid());
  EXPECT_EQ(add.fn, nullptr);           // implicit: dispatches via the op
  ASSERT_NE(add.op, nullptr);
  EXPECT_EQ(add.op->name, "add");
  EXPECT_EQ(*add.name, "add");

  MethodRef unknown_method = exec.Resolve("c", "no-such-op");
  EXPECT_FALSE(unknown_method.valid());
  ASSERT_NE(unknown_method.object, nullptr);  // object resolved, method not
  EXPECT_EQ(*unknown_method.name, "no-such-op");

  MethodRef unknown_object = exec.Resolve("nope", "add");
  EXPECT_FALSE(unknown_object.valid());
  EXPECT_EQ(unknown_object.object, nullptr);

  ObjectHandle h = exec.FindObject("c");
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.name(), "c");
  EXPECT_TRUE(exec.Resolve(h, "get").valid());
  EXPECT_FALSE(exec.FindObject("nope").valid());
}

TEST(HandlesTest, HandleAndStringPathsAgree) {
  ObjectBase base;
  base.CreateObject("acct", adt::MakeBankAccountSpec(100));
  Executor exec(base, {.protocol = Protocol::kN2pl});
  MethodRef withdraw = exec.Resolve("acct", "withdraw");
  MethodRef balance = exec.Resolve("acct", "balance");

  TxnResult by_handle = exec.RunTransaction("h", [&](MethodCtx& txn) {
    txn.Invoke(withdraw, {int64_t{30}});
    return txn.Invoke(balance);
  });
  TxnResult by_string = exec.RunTransaction("s", [&](MethodCtx& txn) {
    txn.Invoke("acct", "withdraw", {int64_t{30}});
    return txn.Invoke("acct", "balance");
  });
  ASSERT_TRUE(by_handle.committed);
  ASSERT_TRUE(by_string.committed);
  EXPECT_EQ(by_handle.ret, Value(int64_t{70}));
  EXPECT_EQ(by_string.ret, Value(int64_t{40}));
}

TEST(HandlesTest, InvokingInvalidRefAbortsWithUser) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = Protocol::kN2pl});
  MethodRef bogus = exec.Resolve("c", "no-such-op");
  TxnResult r = exec.RunTransactionOnce("t", [&](MethodCtx& txn) {
    txn.Invoke(bogus);
    return Value();
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.last_abort, cc::AbortReason::kUser);

  // TryInvoke on an unknown OBJECT reports instead of throwing.
  TxnResult r2 = exec.RunTransaction("t2", [&](MethodCtx& txn) {
    MethodCtx::InvokeOutcome o = txn.TryInvoke(MethodRef{});
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.reason, cc::AbortReason::kUser);
    return Value();
  });
  EXPECT_TRUE(r2.committed);
}

TEST(HandlesTest, DefineMethodReportsUnknownObject) {
  // DefineMethod used to silently no-op on an unknown object name, turning
  // a setup typo into kUser aborts at invoke time.  It now reports.
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = Protocol::kN2pl});
  EXPECT_FALSE(exec.DefineMethod("no-such-object", "m",
                                 [](MethodCtx&) -> Value { return Value(); }));
  EXPECT_TRUE(exec.DefineMethod("c", "m",
                                [](MethodCtx&) -> Value { return Value(); }));
}

TEST(HandlesTest, LateRegistrationKeepsEarlierRefsValid) {
  // Method tables live in a deque pre-sized to the base: registering
  // methods on many objects AFTER resolving a ref must leave the earlier
  // ref's function pointer intact (a vector resize used to be able to move
  // the tables out from under it).
  ObjectBase base;
  base.CreateObject("first", adt::MakeCounterSpec(0));
  for (int i = 0; i < 80; ++i) {
    base.CreateObject("c" + std::to_string(i), adt::MakeCounterSpec(0));
  }
  Executor exec(base, {.protocol = Protocol::kN2pl});
  ASSERT_TRUE(exec.DefineMethod("first", "bump", [](MethodCtx& m) -> Value {
    m.Local("add", {int64_t{1}});
    return Value();
  }));
  MethodRef bump = exec.Resolve("first", "bump");
  ASSERT_TRUE(bump.valid());
  const MethodFn* fn_before = bump.fn;
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(exec.DefineMethod("c" + std::to_string(i), "noop",
                                  [](MethodCtx&) -> Value { return Value(); }));
  }
  EXPECT_EQ(bump.fn, fn_before);
  ASSERT_TRUE(exec.RunTransaction("t", [&](MethodCtx& txn) {
    txn.Invoke(bump);
    return Value();
  }).committed);
  EXPECT_EQ(exec.RunTransaction("g", [&](MethodCtx& t) {
    return t.Invoke("first", "get");
  }).ret, Value(int64_t{1}));
}

TEST(HandlesTest, RedefinitionKeepsResolvedRefsValid) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = Protocol::kN2pl});
  ASSERT_TRUE(exec.DefineMethod("c", "bump", [](MethodCtx& m) -> Value {
    m.Local("add", {int64_t{1}});
    return Value(int64_t{1});
  }));
  MethodRef bump = exec.Resolve("c", "bump");
  ASSERT_TRUE(bump.valid());
  ASSERT_NE(bump.fn, nullptr);
  // Redefine AFTER resolving: the ref must see the new body.
  ASSERT_TRUE(exec.DefineMethod("c", "bump", [](MethodCtx& m) -> Value {
    m.Local("add", {int64_t{10}});
    return Value(int64_t{10});
  }));
  TxnResult r = exec.RunTransaction("t", [&](MethodCtx& txn) {
    return txn.Invoke(bump);
  });
  ASSERT_TRUE(r.committed);
  EXPECT_EQ(r.ret, Value(int64_t{10}));
  TxnResult check = exec.RunTransaction("check", [&](MethodCtx& txn) {
    return txn.Invoke("c", "get");
  });
  EXPECT_EQ(check.ret, Value(int64_t{10}));
}

TEST(HandlesTest, LocalByDescriptorInsideMethodBody) {
  ObjectBase base;
  base.CreateObject("c", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = Protocol::kNto});
  const adt::OpDescriptor* add = base.Find("c")->spec().FindOp("add");
  ASSERT_NE(add, nullptr);
  ASSERT_TRUE(exec.DefineMethod("c", "bump3", [add](MethodCtx& m) -> Value {
    EXPECT_EQ(m.ResolveLocal("add"), add);
    for (int i = 0; i < 3; ++i) m.Local(*add, {int64_t{2}});
    return Value();
  }));
  MethodRef bump3 = exec.Resolve("c", "bump3");
  ASSERT_TRUE(exec.RunTransaction("t", [&](MethodCtx& txn) {
    txn.Invoke(bump3);
    return Value();
  }).committed);
  TxnResult check = exec.RunTransaction("check", [&](MethodCtx& txn) {
    return txn.Invoke("c", "get");
  });
  EXPECT_EQ(check.ret, Value(int64_t{6}));
}

TEST(HandlesTest, ParallelBoundCalls) {
  ObjectBase base;
  base.CreateObject("a", adt::MakeCounterSpec(0));
  base.CreateObject("b", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = Protocol::kN2pl});
  MethodRef add_a = exec.Resolve("a", "add");
  MethodRef add_b = exec.Resolve("b", "add");
  TxnResult r = exec.RunTransaction("t", [&](MethodCtx& txn) {
    auto outcomes = txn.InvokeParallel(std::vector<MethodCtx::BoundCall>{
        {add_a, {int64_t{3}}}, {add_b, {int64_t{4}}}});
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_TRUE(outcomes[1].ok);
    return Value();
  });
  ASSERT_TRUE(r.committed);
  EXPECT_EQ(exec.RunTransaction("ga", [&](MethodCtx& t) {
    return t.Invoke("a", "get");
  }).ret, Value(int64_t{3}));
  EXPECT_EQ(exec.RunTransaction("gb", [&](MethodCtx& t) {
    return t.Invoke("b", "get");
  }).ret, Value(int64_t{4}));
}

// --- the acceptance invariant ---------------------------------------------

// After `prepare`, the per-step path of the offered workload performs NO
// name lookups at all: neither ObjectBase::Find nor AdtSpec::FindOp fires
// while transactions execute through interned handles.  This is the
// assertion form of the "string-free steady state" acceptance criterion.
void RunLookupFreeSteadyState(Protocol protocol) {
  workload::BankingParams p;
  p.accounts = 8;
  p.branches = 2;
  p.theta = 0.0;
  p.audit_weight = 0.3;
  p.audit_scan = 2;
  ObjectBase base;
  workload::SetupBanking(base, p);
  Executor exec(base, {.protocol = protocol, .record = true});
  workload::WorkloadSpec spec = workload::MakeBankingSpec(p);
  ASSERT_TRUE(static_cast<bool>(spec.prepare));
  spec.prepare(exec);  // resolve-once: all handle resolution happens here

  const uint64_t find_before = ObjectFindCalls().load();
  const uint64_t op_before = adt::FindOpCalls().load();
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    for (const workload::TxnTemplate& tmpl : spec.mix) {
      MethodFn body = tmpl.make(rng);
      exec.RunTransaction(tmpl.name, std::move(body));
    }
  }
  EXPECT_GT(exec.stats().committed.load(), 0u);
  EXPECT_EQ(ObjectFindCalls().load(), find_before)
      << ProtocolName(protocol) << " resolved an object by name per step";
  EXPECT_EQ(adt::FindOpCalls().load(), op_before)
      << ProtocolName(protocol) << " resolved an op by name per step";
}

TEST(HandlesTest, SteadyStateIsLookupFreeN2pl) {
  RunLookupFreeSteadyState(Protocol::kN2pl);
}
TEST(HandlesTest, SteadyStateIsLookupFreeNto) {
  RunLookupFreeSteadyState(Protocol::kNto);
}
TEST(HandlesTest, SteadyStateIsLookupFreeCert) {
  RunLookupFreeSteadyState(Protocol::kCert);
}

// --- dense dispatch tables -------------------------------------------------

TEST(DenseDispatchTest, OpIdsAreDenseAndConsistent) {
  std::vector<std::shared_ptr<const adt::AdtSpec>> specs = {
      adt::MakeCounterSpec(0),      adt::MakeRegisterSpec(0),
      adt::MakeBankAccountSpec(10), adt::MakeQueueSpec(),
      adt::MakeSetSpec(),           adt::MakeBagSpec(),
      adt::MakeDirectorySpec(),     adt::MakeBTreeDictionarySpec()};
  for (const auto& spec : specs) {
    SCOPED_TRACE(std::string(spec->type_name()));
    auto names = spec->OpNames();
    ASSERT_EQ(spec->NumOps(), names.size());
    for (adt::OpId i = 0; i < spec->NumOps(); ++i) {
      const adt::OpDescriptor& d = spec->OpAt(i);
      EXPECT_EQ(d.id, i);
      // FindOp is the resolve-once inverse of OpAt.
      EXPECT_EQ(spec->FindOp(d.name), &d);
    }
    // The dense conflict matrix agrees with the name-based relation and is
    // symmetric (operation-granularity tables are symmetric closures).
    for (adt::OpId i = 0; i < spec->NumOps(); ++i) {
      for (adt::OpId j = 0; j < spec->NumOps(); ++j) {
        EXPECT_EQ(spec->OpConflictsById(i, j),
                  spec->OpConflicts(spec->OpAt(i).name, spec->OpAt(j).name));
        EXPECT_EQ(spec->OpConflictsById(i, j), spec->OpConflictsById(j, i));
      }
    }
  }
}

TEST(DenseDispatchTest, StepViewsWithAndWithoutIdsAgree) {
  auto spec = adt::MakeQueueSpec();
  const adt::OpDescriptor* enq = spec->FindOp("enqueue");
  const adt::OpDescriptor* deq = spec->FindOp("dequeue");
  Args enq_args{Value(int64_t{7})};
  Args none{};
  Value enq_ret = Value::None();
  Value deq_hit(int64_t{7});
  Value deq_miss(int64_t{9});
  for (const Value* deq_ret : {&deq_hit, &deq_miss}) {
    adt::StepView with_a{enq->name, &enq_args, &enq_ret, enq->id};
    adt::StepView with_b{deq->name, &none, deq_ret, deq->id};
    adt::StepView without_a{"enqueue", &enq_args, &enq_ret};
    adt::StepView without_b{"dequeue", &none, deq_ret};
    EXPECT_EQ(spec->StepConflicts(with_a, with_b),
              spec->StepConflicts(without_a, without_b));
  }
  // And the known rule itself: a dequeue returning the enqueued value
  // conflicts, another value does not.
  adt::StepView a{enq->name, &enq_args, &enq_ret, enq->id};
  adt::StepView hit{deq->name, &none, &deq_hit, deq->id};
  adt::StepView miss{deq->name, &none, &deq_miss, deq->id};
  EXPECT_TRUE(spec->StepConflicts(a, hit));
  EXPECT_FALSE(spec->StepConflicts(a, miss));
}

}  // namespace
}  // namespace objectbase::rt
