#include "src/cc/n2pl_controller.h"

#include "src/runtime/apply.h"
#include "src/runtime/wal.h"

namespace objectbase::cc {

N2plController::N2plController(rt::Recorder& recorder, Granularity granularity)
    : recorder_(recorder), granularity_(granularity) {}

void N2plController::OnTopBegin(rt::TxnNode&) {}

OpOutcome N2plController::ExecuteLocal(rt::TxnNode& txn, rt::Object& obj,
                                       const adt::OpDescriptor& op,
                                       const Args& args) {
  if (granularity_ == Granularity::kOperation) {
    return ExecuteOperationMode(txn, obj, op, args);
  }
  return ExecuteStepMode(txn, obj, op, args);
}

OpOutcome N2plController::ExecuteOperationMode(rt::TxnNode& txn,
                                               rt::Object& obj,
                                               const adt::OpDescriptor& op,
                                               const Args& args) {
  // Rule 1: own L(a) before issuing a.  Operation-class lock: no ret.
  LockManager::Request req;
  req.op = &op;
  req.args = args;
  switch (locks_.Acquire(txn, obj, std::move(req))) {
    case LockManager::Outcome::kGranted:
      break;
    case LockManager::Outcome::kDeadlock:
      return OpOutcome::Abort(AbortReason::kDeadlock);
    case LockManager::Outcome::kWounded:
      return OpOutcome::Abort(AbortReason::kWounded);
  }
  std::lock_guard<std::shared_mutex> g(obj.state_mu());
  rt::AppliedOutcome out = rt::ApplyLocked(txn, obj, op, args, recorder_,
                                           /*append_applied_log=*/false, wal_);
  return OpOutcome::Ok(std::move(out.ret));
}

OpOutcome N2plController::ExecuteStepMode(rt::TxnNode& txn, rt::Object& obj,
                                          const adt::OpDescriptor& op,
                                          const Args& args) {
  // The Section 5.1 provisional-execution loop: execute, observe the return
  // value, try to lock the resulting STEP; on failure undo the provisional
  // effect (atomically w.r.t. the object's other local operations — we are
  // inside state_mu) and retry after the lock table changes.
  for (;;) {
    std::unique_lock<std::shared_mutex> state_guard(obj.state_mu());
    adt::ApplyResult provisional = op.apply(obj.state(), args);
    LockManager::Request req;
    req.op = &op;
    req.args = args;
    req.ret = provisional.ret;
    LockManager::TryOutcome attempt = locks_.TryAcquire(txn, obj, req);
    if (attempt == LockManager::TryOutcome::kGranted) {
      // Keep the provisional effect; record it as the real step.  The
      // per-object ticket (drawn under this exclusive latch) is the
      // application-order key; the raw stamp is a leased draw.
      const uint64_t order = obj.NextApplyStamp();
      txn.PushUndo(rt::UndoRecord{order, &obj, std::move(provisional.undo)});
      recorder_.RecordLocalStep(txn.exec_id, txn.NextPo(), obj.id(), op.id,
                                args, provisional.ret, order,
                                recorder_.NextSeq());
      if (wal_ != nullptr) {
        // Stage only ACCEPTED steps, inside state_mu (staging order per
        // object = application order; denied provisionals leave no trace).
        wal_->StageRedo(obj.id(), rt::WalWriter::kOrderByStagePos,
                        txn.top()->uid(), txn.uid(), txn.ChainPtr(), op.id,
                        args, provisional.ret);
      }
      return OpOutcome::Ok(std::move(provisional.ret));
    }
    // Undo the provisional effect before letting anyone else in.
    if (provisional.undo) provisional.undo(obj.state());
    state_guard.unlock();
    if (attempt == LockManager::TryOutcome::kWounded) {
      return OpOutcome::Abort(AbortReason::kWounded);
    }
    switch (locks_.WaitWhileBlocked(txn, obj, req)) {
      case LockManager::Outcome::kGranted:
        break;
      case LockManager::Outcome::kDeadlock:
        return OpOutcome::Abort(AbortReason::kDeadlock);
      case LockManager::Outcome::kWounded:
        return OpOutcome::Abort(AbortReason::kWounded);
    }
    // Lock table changed; retry the provisional execution (the return
    // value, and hence the required lock, may differ now).
  }
}

void N2plController::OnChildCommit(rt::TxnNode& child) {
  // Rule 5: the parent inherits every lock the child owns.
  locks_.TransferToParent(child);
}

bool N2plController::OnTopCommit(rt::TxnNode& top, AbortReason*) {
  if (wal_ != nullptr) {
    // Strict locking keeps the transaction's effects invisible until
    // OnTopFinished releases its locks, so gating the acknowledgement here
    // orders durability before visibility.  The commit-wait is declared in
    // the waits-for graph (composite wait-state visibility, the PR-5
    // certifier-wait pattern); the writer thread never blocks on locks, so
    // the wait can never close a cycle.
    wal_->WaitDurable(wal_->StageCommit(top.uid()), &locks_.waits_for(),
                      ThisThreadKey());
  }
  return true;
}

void N2plController::OnAbort(rt::TxnNode& node) {
  // The aborted subtree's steps have been undone by the runtime; its locks
  // simply disappear.
  locks_.ReleaseSubtree(node);
}

void N2plController::OnTopFinished(rt::TxnNode& top) {
  // Argus discipline: all locks (inherited up to the top by rule 5) are
  // released when the top-level transaction completes.
  locks_.ReleaseSubtree(top);
}

}  // namespace objectbase::cc
