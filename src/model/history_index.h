// One-pass ancestry/abort precomputation over a History.
//
// Every consumer of the execution forest (SG construction, the local
// graphs of Definition 10, the serialiser, replay bucketing) needs the
// same queries — "is a an ancestor of d?", "are a and b incomparable?",
// "did e effectively abort?", "which executions descend from e?" — and the
// History struct answers them by pointer-chasing parent links on every
// call.  HistoryIndex answers all of them in O(1) (or returns a
// precomputed contiguous slice) after a single O(|E|) pass:
//
//   * depth / parent / top arrays — flat copies of the forest structure;
//   * an Euler-tour (preorder) numbering tin/tout with the standard
//     interval property: a is an ancestor-or-self of d iff
//     tin[a] <= tin[d] < tout[a];
//   * by_tin — executions in preorder, so the descendants of e (self
//     included) are exactly the contiguous slice by_tin[tin[e]..tout[e]);
//   * effectively_aborted — the upward closure of the aborted flags
//     (Section 3 semantics (b)) as a bitmap.
//
// The index is a snapshot: it must not outlive mutations of the history's
// execution forest.
#ifndef OBJECTBASE_MODEL_HISTORY_INDEX_H_
#define OBJECTBASE_MODEL_HISTORY_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/model/history.h"

namespace objectbase::model {

class HistoryIndex {
 public:
  explicit HistoryIndex(const History& h);

  size_t size() const { return parent_.size(); }

  /// True iff `a` is an ancestor of `d` or a == d.  O(1).
  bool IsAncestorOrSelf(ExecId a, ExecId d) const {
    return tin_[a] <= tin_[d] && tin_[d] < tout_[a];
  }

  /// True iff neither execution is a descendent of the other.  O(1).
  bool Incomparable(ExecId a, ExecId b) const {
    return !IsAncestorOrSelf(a, b) && !IsAncestorOrSelf(b, a);
  }

  /// True iff the execution or any ancestor aborted.  O(1).
  bool EffectivelyAborted(ExecId e) const { return aborted_[e] != 0; }

  ExecId Parent(ExecId e) const { return parent_[e]; }
  ExecId Top(ExecId e) const { return top_[e]; }
  uint32_t Depth(ExecId e) const { return depth_[e]; }

  /// Least common ancestor, or kNoExec when the executions live in
  /// different top-level trees.  O(depth difference + distance to the lca).
  ExecId Lca(ExecId a, ExecId b) const;

  /// Executions of the subtree rooted at `e` (self included), preorder.
  struct Slice {
    const ExecId* first;
    const ExecId* last;
    const ExecId* begin() const { return first; }
    const ExecId* end() const { return last; }
    size_t size() const { return static_cast<size_t>(last - first); }
  };
  Slice DescendantsOf(ExecId e) const {
    return Slice{by_tin_.data() + tin_[e], by_tin_.data() + tout_[e]};
  }

  /// All executions in preorder (roots in id order).
  const std::vector<ExecId>& Preorder() const { return by_tin_; }

  /// Appends the ancestors of `a` strictly below `stop` (i.e. the path
  /// a, parent(a), ... up to but excluding `stop`) to `out`.  `stop` must
  /// be an ancestor-or-self of `a`, or kNoExec for the whole chain.
  void ChainBelow(ExecId a, ExecId stop, std::vector<ExecId>& out) const {
    for (ExecId e = a; e != stop; e = parent_[e]) out.push_back(e);
  }

 private:
  std::vector<ExecId> parent_;
  std::vector<ExecId> top_;
  std::vector<uint32_t> depth_;
  std::vector<uint32_t> tin_;
  std::vector<uint32_t> tout_;
  std::vector<ExecId> by_tin_;
  std::vector<uint8_t> aborted_;
};

}  // namespace objectbase::model

#endif  // OBJECTBASE_MODEL_HISTORY_INDEX_H_
