#include "src/workload/fsm_scenarios.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/adt/btree_dictionary_adt.h"
#include "src/adt/counter_adt.h"
#include "src/adt/queue_adt.h"
#include "src/adt/set_adt.h"

// Every scenario follows the generators.cc resolve-once/execute-many
// discipline: the workload's `setup` hook resolves MethodRefs into a shared
// Handles struct, so state bodies and checks touch no name maps.  Checks
// read THROUGH transactions (one read-only txn per check) — a check that
// fails to commit under contention observed no serialisation point and
// passes no judgment.

namespace objectbase::workload {
namespace {

std::string Obj(const std::string& prefix, const char* suffix) {
  return prefix + ":" + suffix;
}

}  // namespace

// --- secondary-index maintenance --------------------------------------------

namespace {
struct SiHandles {
  rt::MethodRef get, put, del, count;          // <prefix>:dict
  rt::MethodRef insert, erase, contains, size; // <prefix>:index
};

// What one check transaction observed at its serialisation point.
struct SiRead {
  Value value;
  bool in_index = false;
  int64_t count = 0;
  int64_t size = 0;
};
}  // namespace

void SetupSecondaryIndex(rt::ObjectBase& base, const SecondaryIndexParams& p) {
  base.CreateObject(Obj(p.prefix, "dict"), adt::MakeBTreeDictionarySpec());
  base.CreateObject(Obj(p.prefix, "index"), adt::MakeSetSpec());
}

FsmWorkload MakeSecondaryIndexFsm(const SecondaryIndexParams& p) {
  const SecondaryIndexParams params = p;
  auto zipf = std::make_shared<ZipfGenerator>(p.keyspace, p.theta);
  auto handles = std::make_shared<SiHandles>();
  const std::string check_name = p.prefix + "/check";

  FsmWorkload w;
  w.name = "secondary-index";
  w.threads = p.threads;
  w.iterations = p.iterations;

  w.setup = [params, handles](rt::Executor& exec) {
    rt::ObjectHandle dict = exec.FindObject(Obj(params.prefix, "dict"));
    rt::ObjectHandle index = exec.FindObject(Obj(params.prefix, "index"));
    handles->get = exec.Resolve(dict, "get");
    handles->put = exec.Resolve(dict, "put");
    handles->del = exec.Resolve(dict, "del");
    handles->count = exec.Resolve(dict, "count");
    handles->insert = exec.Resolve(index, "insert");
    handles->erase = exec.Resolve(index, "erase");
    handles->contains = exec.Resolve(index, "contains");
    handles->size = exec.Resolve(index, "size");
    // Prefill is idempotent (put overwrites, insert is a no-op on present
    // keys), so repeated Run() calls on one base stay consistent.
    const std::string name = params.prefix + "/prefill";
    exec.RunTransaction(name, [params, handles](rt::MethodCtx& txn) -> Value {
      for (int64_t k = 0; k < params.prefill; ++k) {
        txn.Invoke(handles->put, {k, k + 1});
        txn.Invoke(handles->insert, {k});
      }
      return Value();
    });
  };

  // Every mutating state maintains the invariant INSIDE its transaction:
  // the index is updated iff the dictionary's key-set actually changed.
  FsmState upsert;
  upsert.name = "upsert";
  upsert.make = [zipf, handles](Rng& rng) -> rt::MethodFn {
    int64_t k = static_cast<int64_t>(zipf->Next(rng));
    int64_t v = rng.Range(1, 1'000'000);
    return [handles, k, v](rt::MethodCtx& txn) -> Value {
      Value old = txn.Invoke(handles->put, {k, v});
      if (old.is_none()) txn.Invoke(handles->insert, {k});
      return Value(true);
    };
  };

  FsmState remove;
  remove.name = "remove";
  remove.make = [zipf, handles](Rng& rng) -> rt::MethodFn {
    int64_t k = static_cast<int64_t>(zipf->Next(rng));
    return [handles, k](rt::MethodCtx& txn) -> Value {
      Value was = txn.Invoke(handles->del, {k});
      if (was.AsBool()) txn.Invoke(handles->erase, {k});
      return Value(was.AsBool());
    };
  };

  FsmState lookup;
  lookup.name = "lookup";
  lookup.make = [zipf, handles](Rng& rng) -> rt::MethodFn {
    int64_t k = static_cast<int64_t>(zipf->Next(rng));
    return [handles, k](rt::MethodCtx& txn) -> Value {
      Value v = txn.Invoke(handles->get, {k});
      txn.Invoke(handles->contains, {k});
      return v;
    };
  };

  // The cross-object invariant, checked at a fresh serialisation point
  // after every committed visit: key in dict <=> key in index, and the
  // cardinalities agree.
  auto check = [zipf, handles, check_name](FsmCheckCtx& ctx) {
    int64_t k = static_cast<int64_t>(zipf->Next(ctx.rng()));
    auto seen = std::make_shared<SiRead>();
    rt::TxnResult r = ctx.exec().RunTransaction(
        check_name, [handles, k, seen](rt::MethodCtx& txn) -> Value {
          seen->value = txn.Invoke(handles->get, {k});
          seen->in_index = txn.Invoke(handles->contains, {k}).AsBool();
          seen->count = txn.Invoke(handles->count).AsInt();
          seen->size = txn.Invoke(handles->size).AsInt();
          return Value();
        });
    if (!r.committed) return;
    if (seen->value.is_none() == seen->in_index) {
      ctx.Fail("key " + std::to_string(k) + " dict/index disagree (present=" +
               (seen->value.is_none() ? "no" : "yes") + ", indexed=" +
               (seen->in_index ? "yes" : "no") + ")");
    }
    if (seen->count != seen->size) {
      ctx.Fail("dict count " + std::to_string(seen->count) + " != index size " +
               std::to_string(seen->size));
    }
  };
  upsert.check = check;
  remove.check = check;
  lookup.check = check;

  w.states = {upsert, remove, lookup};
  w.transitions = {
      {2, 2, 1},  // upsert: keep churning, sometimes verify via lookup
      {2, 1, 2},
      {2, 2, 1},
  };
  NormalizeTransitionRows(w.transitions);

  // Whole-keyspace audit once the walkers are done.
  w.teardown = [params, handles, check_name](FsmCheckCtx& ctx) {
    auto seen = std::make_shared<SiRead>();
    auto bad_key = std::make_shared<int64_t>(-1);
    rt::TxnResult r = ctx.exec().RunTransaction(
        check_name,
        [params, handles, seen, bad_key](rt::MethodCtx& txn) -> Value {
          *bad_key = -1;
          for (int64_t k = 0; k < params.keyspace; ++k) {
            bool present = !txn.Invoke(handles->get, {k}).is_none();
            bool indexed = txn.Invoke(handles->contains, {k}).AsBool();
            if (present != indexed && *bad_key < 0) *bad_key = k;
          }
          seen->count = txn.Invoke(handles->count).AsInt();
          seen->size = txn.Invoke(handles->size).AsInt();
          return Value();
        });
    if (!r.committed) {
      ctx.Fail("teardown audit transaction failed to commit");
      return;
    }
    if (*bad_key >= 0) {
      ctx.Fail("final scan: key " + std::to_string(*bad_key) +
               " dict/index disagree");
    }
    if (seen->count != seen->size) {
      ctx.Fail("final scan: dict count " + std::to_string(seen->count) +
               " != index size " + std::to_string(seen->size));
    }
  };
  return w;
}

// --- queue-graph pipeline with backpressure ----------------------------------

namespace {
struct QpHandles {
  std::vector<rt::MethodRef> enqueue, dequeue, length;  // per stage queue
  rt::MethodRef produced_add, produced_get;
  rt::MethodRef consumed_add, consumed_get;
};

struct QpRead {
  std::vector<int64_t> lengths;
  int64_t produced = 0;
  int64_t consumed = 0;
};
}  // namespace

void SetupQueuePipeline(rt::ObjectBase& base, const QueuePipelineParams& p) {
  for (int i = 0; i < p.stages; ++i) {
    base.CreateObject(p.prefix + ":q" + std::to_string(i),
                      adt::MakeQueueSpec());
  }
  base.CreateObject(Obj(p.prefix, "produced"), adt::MakeCounterSpec(0));
  base.CreateObject(Obj(p.prefix, "consumed"), adt::MakeCounterSpec(0));
}

FsmWorkload MakeQueuePipelineFsm(const QueuePipelineParams& p) {
  const QueuePipelineParams params = p;
  auto handles = std::make_shared<QpHandles>();
  const std::string check_name = p.prefix + "/check";
  const int64_t bound = p.bound;
  const int last = p.stages - 1;

  FsmWorkload w;
  w.name = "queue-pipeline";
  w.threads = p.threads;
  w.iterations = p.iterations;

  w.setup = [params, handles](rt::Executor& exec) {
    handles->enqueue.clear();
    handles->dequeue.clear();
    handles->length.clear();
    for (int i = 0; i < params.stages; ++i) {
      rt::ObjectHandle q =
          exec.FindObject(params.prefix + ":q" + std::to_string(i));
      handles->enqueue.push_back(exec.Resolve(q, "enqueue"));
      handles->dequeue.push_back(exec.Resolve(q, "dequeue"));
      handles->length.push_back(exec.Resolve(q, "length"));
    }
    handles->produced_add =
        exec.Resolve(Obj(params.prefix, "produced"), "add");
    handles->produced_get =
        exec.Resolve(Obj(params.prefix, "produced"), "get");
    handles->consumed_add =
        exec.Resolve(Obj(params.prefix, "consumed"), "add");
    handles->consumed_get =
        exec.Resolve(Obj(params.prefix, "consumed"), "get");
  };

  // The bound is enforced INSIDE each transaction (length check and enqueue
  // at the same serialisation point), so "length <= bound" is an invariant,
  // not a hope.  The conservation counters move in the same transaction as
  // the queue op they describe.
  FsmState produce;
  produce.name = "produce";
  produce.make = [handles, bound](Rng& rng) -> rt::MethodFn {
    int64_t tag = rng.Range(1, 1'000'000'000);
    return [handles, bound, tag](rt::MethodCtx& txn) -> Value {
      if (txn.Invoke(handles->length[0]).AsInt() >= bound) {
        return Value(false);  // backpressure: full head queue, no-op txn
      }
      txn.Invoke(handles->enqueue[0], {tag});
      txn.Invoke(handles->produced_add, {int64_t{1}});
      return Value(true);
    };
  };

  // The producer's stall state: observe the head queue, mutate nothing.
  FsmState stall;
  stall.name = "stall";
  stall.make = [handles](Rng&) -> rt::MethodFn {
    return [handles](rt::MethodCtx& txn) -> Value {
      return txn.Invoke(handles->length[0]);
    };
  };

  FsmState consume;
  consume.name = "consume";
  consume.make = [handles, last](Rng&) -> rt::MethodFn {
    return [handles, last](rt::MethodCtx& txn) -> Value {
      Value v = txn.Invoke(handles->dequeue[last]);
      if (v.is_none()) return Value(false);
      txn.Invoke(handles->consumed_add, {int64_t{1}});
      return Value(true);
    };
  };

  auto check = [params, handles, check_name](FsmCheckCtx& ctx) {
    auto seen = std::make_shared<QpRead>();
    rt::TxnResult r = ctx.exec().RunTransaction(
        check_name, [params, handles, seen](rt::MethodCtx& txn) -> Value {
          seen->lengths.clear();
          for (int i = 0; i < params.stages; ++i) {
            seen->lengths.push_back(
                txn.Invoke(handles->length[i]).AsInt());
          }
          seen->produced = txn.Invoke(handles->produced_get).AsInt();
          seen->consumed = txn.Invoke(handles->consumed_get).AsInt();
          return Value();
        });
    if (!r.committed) return;
    int64_t in_flight = 0;
    for (int i = 0; i < params.stages; ++i) {
      in_flight += seen->lengths[i];
      if (seen->lengths[i] > params.bound) {
        ctx.Fail("queue " + std::to_string(i) + " length " +
                 std::to_string(seen->lengths[i]) + " exceeds bound " +
                 std::to_string(params.bound));
      }
    }
    if (seen->produced - seen->consumed != in_flight) {
      ctx.Fail("conservation: produced " + std::to_string(seen->produced) +
               " - consumed " + std::to_string(seen->consumed) + " != " +
               std::to_string(in_flight) + " in flight");
    }
  };
  produce.check = check;
  consume.check = check;

  // State order: produce(0), stall(1), move:1..move:stages-1, consume(last).
  w.states = {produce, stall};
  for (int i = 1; i < p.stages; ++i) {
    FsmState move;
    move.name = "move:" + std::to_string(i);
    move.make = [handles, bound, i](Rng&) -> rt::MethodFn {
      return [handles, bound, i](rt::MethodCtx& txn) -> Value {
        if (txn.Invoke(handles->length[i]).AsInt() >= bound) {
          return Value(false);  // downstream backpressure
        }
        Value v = txn.Invoke(handles->dequeue[i - 1]);
        if (v.is_none()) return Value(false);  // nothing to move
        txn.Invoke(handles->enqueue[i], {v});
        return Value(true);
      };
    };
    move.check = check;
    w.states.push_back(std::move(move));
  }
  w.states.push_back(consume);

  // Base odds favour production with movers and consumers keeping pace;
  // after a produce the stall state is twice as likely (the backpressure
  // response), and a stall strongly retries production.
  std::vector<double> odds{3, 1};
  for (int i = 1; i < p.stages; ++i) odds.push_back(2);
  odds.push_back(2);
  w.transitions.assign(w.states.size(), odds);
  w.transitions[0][1] = 2;
  w.transitions[1][0] = 4;
  NormalizeTransitionRows(w.transitions);

  w.teardown = check;
  return w;
}

// --- read-mostly catalogue serving -------------------------------------------

namespace {
struct CatHandles {
  rt::MethodRef get, put, count;          // <prefix>:cat
  rt::MethodRef version_add, version_get; // <prefix>:version
};

// Per-walker last-observed version, for the monotonicity check.  Cleared in
// setup so a workload value can be reused across executors.
struct CatSeen {
  std::mutex mu;
  std::unordered_map<int, int64_t> last;
};

struct CatRead {
  int64_t version = 0;
  int64_t count = 0;
};
}  // namespace

void SetupCatalogue(rt::ObjectBase& base, const CatalogueParams& p) {
  base.CreateObject(Obj(p.prefix, "cat"), adt::MakeBTreeDictionarySpec());
  base.CreateObject(Obj(p.prefix, "version"), adt::MakeCounterSpec(0));
}

FsmWorkload MakeCatalogueFsm(const CatalogueParams& p) {
  const CatalogueParams params = p;
  auto zipf = std::make_shared<ZipfGenerator>(p.keyspace, p.theta);
  auto handles = std::make_shared<CatHandles>();
  auto seen_versions = std::make_shared<CatSeen>();
  const std::string check_name = p.prefix + "/check";

  FsmWorkload w;
  w.name = "catalogue";
  w.threads = p.threads;
  w.iterations = p.iterations;

  w.setup = [params, handles, seen_versions](rt::Executor& exec) {
    rt::ObjectHandle cat = exec.FindObject(Obj(params.prefix, "cat"));
    handles->get = exec.Resolve(cat, "get");
    handles->put = exec.Resolve(cat, "put");
    handles->count = exec.Resolve(cat, "count");
    handles->version_add =
        exec.Resolve(Obj(params.prefix, "version"), "add");
    handles->version_get =
        exec.Resolve(Obj(params.prefix, "version"), "get");
    {
      std::lock_guard<std::mutex> g(seen_versions->mu);
      seen_versions->last.clear();
    }
    // Prefill in bounded chunks (version stays untouched, so the audit
    // bound "count - prefill <= version" starts tight).
    const std::string name = params.prefix + "/prefill";
    for (int start = 0; start < params.prefill; start += 64) {
      int end = std::min(start + 64, params.prefill);
      exec.RunTransaction(
          name, [handles, start, end](rt::MethodCtx& txn) -> Value {
            for (int64_t k = start; k < end; ++k) {
              txn.Invoke(handles->put, {k, k + 1});
            }
            return Value();
          });
    }
  };

  FsmState serve;
  serve.name = "serve";
  serve.make = [params, zipf, handles](Rng& rng) -> rt::MethodFn {
    std::vector<int64_t> keys;
    for (int i = 0; i < params.reads_per_serve; ++i) {
      keys.push_back(static_cast<int64_t>(zipf->Next(rng)));
    }
    return [handles, keys](rt::MethodCtx& txn) -> Value {
      int64_t hits = 0;
      for (int64_t k : keys) {
        if (!txn.Invoke(handles->get, {k}).is_none()) ++hits;
      }
      return Value(hits);
    };
  };

  FsmState write;
  write.name = "write";
  write.make = [zipf, handles](Rng& rng) -> rt::MethodFn {
    int64_t k = static_cast<int64_t>(zipf->Next(rng));
    int64_t v = rng.Range(1, 1'000'000);
    return [handles, k, v](rt::MethodCtx& txn) -> Value {
      txn.Invoke(handles->put, {k, v});
      txn.Invoke(handles->version_add, {int64_t{1}});
      return Value();
    };
  };
  // The version counter only ever grows, so each walker must observe a
  // non-decreasing sequence — a time-travel read is an invariant failure.
  write.check = [handles, seen_versions, check_name](FsmCheckCtx& ctx) {
    auto read = std::make_shared<int64_t>(0);
    rt::TxnResult r = ctx.exec().RunTransaction(
        check_name, [handles, read](rt::MethodCtx& txn) -> Value {
          *read = txn.Invoke(handles->version_get).AsInt();
          return Value();
        });
    if (!r.committed) return;
    std::lock_guard<std::mutex> g(seen_versions->mu);
    int64_t& last = seen_versions->last[ctx.walker()];
    if (*read < last) {
      ctx.Fail("version went backwards: saw " + std::to_string(*read) +
               " after " + std::to_string(last));
    } else {
      last = *read;
    }
  };

  FsmState audit;
  audit.name = "audit";
  audit.make = [handles](Rng&) -> rt::MethodFn {
    return [handles](rt::MethodCtx& txn) -> Value {
      int64_t version = txn.Invoke(handles->version_get).AsInt();
      txn.Invoke(handles->count);
      return Value(version);
    };
  };
  // No key is ever deleted, so the catalogue can only grow past its
  // prefill, and every growth step also bumped the version.
  auto audit_check = [params, handles, check_name](FsmCheckCtx& ctx) {
    auto seen = std::make_shared<CatRead>();
    rt::TxnResult r = ctx.exec().RunTransaction(
        check_name, [handles, seen](rt::MethodCtx& txn) -> Value {
          seen->version = txn.Invoke(handles->version_get).AsInt();
          seen->count = txn.Invoke(handles->count).AsInt();
          return Value();
        });
    if (!r.committed) return;
    if (seen->count < params.prefill) {
      ctx.Fail("catalogue shrank: count " + std::to_string(seen->count) +
               " < prefill " + std::to_string(params.prefill));
    }
    if (seen->count - params.prefill > seen->version) {
      ctx.Fail("count " + std::to_string(seen->count) + " grew past prefill " +
               std::to_string(params.prefill) + " + version " +
               std::to_string(seen->version));
    }
  };
  audit.check = audit_check;

  w.states = {serve, write, audit};
  w.transitions = {
      {8, 1, 1},  // read-mostly: serving overwhelmingly re-enters serve
      {7, 2, 1},
      {8, 1, 1},
  };
  NormalizeTransitionRows(w.transitions);

  w.teardown = audit_check;
  return w;
}

}  // namespace objectbase::workload
