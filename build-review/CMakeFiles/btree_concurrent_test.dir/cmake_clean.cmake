file(REMOVE_RECURSE
  "CMakeFiles/btree_concurrent_test.dir/tests/btree_concurrent_test.cc.o"
  "CMakeFiles/btree_concurrent_test.dir/tests/btree_concurrent_test.cc.o.d"
  "btree_concurrent_test"
  "btree_concurrent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
