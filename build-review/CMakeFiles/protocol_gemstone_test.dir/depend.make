# Empty dependencies file for protocol_gemstone_test.
# This may be replaced when dependencies are built.
