// E7 — Child aborts and the alternative-path pattern.
//
// Claim (Section 3): abortion cascades to descendents, NOT ancestors — "a
// method M can invoke another method M' … if M' fails and aborts, M is not
// also doomed to failure: it may still try an alternative way."  Under
// N2PL (strict locks) the parent can handle the failure locally; protocols
// without partial aborts must retry the whole top-level transaction.
#include "bench/bench_util.h"

#include "src/adt/bank_account_adt.h"
#include "src/adt/counter_adt.h"
#include "src/common/stats.h"
#include "src/runtime/executor.h"

using namespace objectbase;  // NOLINT

namespace {

// A method that fails with the given probability (fault injection).
void DefineFlakyMethod(rt::Executor& exec, const std::string& object,
                       double fail_rate, std::atomic<uint64_t>* invocations) {
  const bool defined = exec.DefineMethod(
      object, "flaky_add", [fail_rate, invocations](rt::MethodCtx& m) -> Value {
    invocations->fetch_add(1);
    workload::SpinWork(3000);  // the work wasted when this child aborts
    m.Local("add", {1});
    // Deterministic pseudo-randomness from the execution uid.
    uint64_t h = m.node().uid() * 0x9e3779b97f4a7c15ULL;
    if ((h >> 32) % 1000 < static_cast<uint64_t>(fail_rate * 1000)) {
      m.Abort();
    }
    return Value();
  });
  if (!defined) std::abort();  // bench setup bug: object must exist
}

}  // namespace

int main() {
  bench::Banner("E7: child abort handling",
                "parent-side alternative path (N2PL partial aborts) vs "
                "whole-transaction retry (paper Section 3)");
  const int scale = bench::Scale();
  const int kTxns = 400 * scale;

  TablePrinter table({"strategy", "fail-rate", "committed", "child-invocations",
                      "wasted-invocations", "elapsed-ms"});
  for (double fail_rate : {0.05, 0.2, 0.5}) {
    // Strategy A: N2PL + TryInvoke, retry only the failed child.
    {
      rt::ObjectBase base;
      base.CreateObject("c", adt::MakeCounterSpec(0));
      rt::Executor exec(base, {.protocol = rt::Protocol::kN2pl,
                               .record = false});
      std::atomic<uint64_t> invocations{0};
      DefineFlakyMethod(exec, "c", fail_rate, &invocations);
      Stopwatch clock;
      uint64_t committed = 0;
      for (int i = 0; i < kTxns; ++i) {
        rt::TxnResult r = exec.RunTransaction("t", [](rt::MethodCtx& txn)
                                                  -> Value {
          // The alternative path: retry the child until it sticks.
          for (int attempt = 0; attempt < 64; ++attempt) {
            if (txn.TryInvoke("c", "flaky_add").ok) return Value(true);
          }
          txn.Abort();
        });
        if (r.committed) ++committed;
      }
      double ms = clock.ElapsedNanos() / 1e6;
      table.AddRow({"child-retry (N2PL)", TablePrinter::Fmt(fail_rate, 2),
                    TablePrinter::Fmt(committed),
                    TablePrinter::Fmt(invocations.load()),
                    TablePrinter::Fmt(invocations.load() - committed),
                    TablePrinter::Fmt(ms, 1)});
      bench::JsonLine("abort_retry")
          .Field("name", "child_retry")
          .Field("fail_rate", fail_rate)
          .Field("committed", committed)
          .Field("wasted", invocations.load() - committed)
          .Field("ns_per_op", committed > 0 ? ms * 1e6 / committed : 0.0)
          .Field("throughput", ms > 0 ? committed * 1e3 / ms : 0.0)
          .Emit();
    }
    // Strategy B: same flaky child, but the whole transaction retries
    // (the only option for the non-partial-abort protocols; shown here
    // under NTO).
    {
      rt::ObjectBase base;
      base.CreateObject("c", adt::MakeCounterSpec(0));
      rt::Executor exec(base, {.protocol = rt::Protocol::kNto,
                               .record = false,
                               .max_top_retries = 256});
      std::atomic<uint64_t> invocations{0};
      DefineFlakyMethod(exec, "c", fail_rate, &invocations);
      Stopwatch clock;
      uint64_t committed = 0;
      for (int i = 0; i < kTxns; ++i) {
        rt::TxnResult r = exec.RunTransaction("t", [](rt::MethodCtx& txn) {
          // Extra prologue work that gets REDONE on every top-level retry.
          workload::SpinWork(3000);
          return txn.Invoke("c", "flaky_add");
        });
        if (r.committed) ++committed;
      }
      double ms = clock.ElapsedNanos() / 1e6;
      table.AddRow({"top-retry (NTO)", TablePrinter::Fmt(fail_rate, 2),
                    TablePrinter::Fmt(committed),
                    TablePrinter::Fmt(invocations.load()),
                    TablePrinter::Fmt(invocations.load() - committed),
                    TablePrinter::Fmt(ms, 1)});
      bench::JsonLine("abort_retry")
          .Field("name", "top_retry")
          .Field("fail_rate", fail_rate)
          .Field("committed", committed)
          .Field("wasted", invocations.load() - committed)
          .Field("ns_per_op", committed > 0 ? ms * 1e6 / committed : 0.0)
          .Field("throughput", ms > 0 ? committed * 1e3 / ms : 0.0)
          .Emit();
    }
  }
  table.Print();
  std::printf("\nExpected shape: both strategies commit everything, but "
              "child-retry wastes only the\nfailed child's work while "
              "top-retry redoes the whole transaction body; the gap\ngrows "
              "with the failure rate.\n");
  return 0;
}
