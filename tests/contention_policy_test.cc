// Adaptive contention management (PR 8): wound–wait and backoff lock
// policies, the O(1) packed-stamp kin test, the adaptive fold cadence and
// the per-object contention telemetry.
//
// The deterministic scenarios build the canonical two-holder shapes by
// hand (phase gates instead of sleeps-and-hope), so the wound path — older
// top wounds younger holder, victim aborts with kWounded, older commits
// without ever being chosen as a deadlock victim — is pinned as behaviour,
// not just exercised as load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/adt/counter_adt.h"
#include "src/adt/register_adt.h"
#include "src/cc/hts.h"
#include "src/cc/lock_manager.h"
#include "src/common/rng.h"
#include "src/runtime/executor.h"
#include "src/runtime/journal.h"

namespace objectbase::rt {
namespace {

void SpinUntil(const std::atomic<int>& phase, int want) {
  while (phase.load(std::memory_order_acquire) < want) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

// --- wound–wait -------------------------------------------------------------

// The canonical two-holder cycle under N2PL: OLD holds X and wants Y,
// YOUNG holds Y and wants X.  Wound–wait must resolve it by age: OLD
// wounds YOUNG, YOUNG aborts with kWounded, OLD commits — never the other
// way around, and never via a deadlock-detection abort of OLD.
TEST(WoundWait, OlderTopWoundsYoungerHolderDeterministically) {
  ObjectBase base;
  base.CreateObject("x", adt::MakeRegisterSpec(0));
  base.CreateObject("y", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = Protocol::kN2pl,
                       .granularity = cc::Granularity::kOperation,
                       .max_top_retries = 1,
                       .contention_policy = cc::ContentionPolicy::kWoundWait});
  const uint64_t wounds_before =
      cc::WoundsIssued().load(std::memory_order_relaxed);

  std::atomic<int> phase{0};
  TxnResult old_r, young_r;
  std::thread older([&] {
    old_r = exec.RunTransactionOnce("old", [&](MethodCtx& txn) -> Value {
      txn.Invoke("x", "write", {1});  // hold X
      phase.store(1, std::memory_order_release);
      SpinUntil(phase, 2);  // YOUNG holds Y (and is headed for X)
      txn.Invoke("y", "write", {1});  // wounds YOUNG, then waits it out
      return Value();
    });
  });
  std::thread younger([&] {
    SpinUntil(phase, 1);  // begin strictly after OLD so the HTS age orders
    young_r = exec.RunTransactionOnce("young", [&](MethodCtx& txn) -> Value {
      txn.Invoke("y", "write", {2});  // hold Y
      phase.store(2, std::memory_order_release);
      txn.Invoke("x", "write", {2});  // blocks on X / observes the wound
      return Value();
    });
  });
  older.join();
  younger.join();

  EXPECT_TRUE(old_r.committed) << "the older transaction must never lose";
  EXPECT_FALSE(young_r.committed);
  EXPECT_EQ(young_r.last_abort, cc::AbortReason::kWounded);
  EXPECT_GE(cc::WoundsIssued().load(std::memory_order_relaxed),
            wounds_before + 1);
  EXPECT_EQ(exec.stats().AbortsFor(cc::AbortReason::kDeadlock), 0u)
      << "wound–wait resolved by age, not by the detection safety net";
  EXPECT_GE(exec.stats().AbortsFor(cc::AbortReason::kWounded), 1u);
}

// Same shape under GEMSTONE (whole-object locks owned by the top): the
// PR-4 faster-admission regression made exactly this cycle a detection
// abort storm.  Under wound_wait both transactions finish, the victim is
// chosen by age, and NO deadlock-detection abort fires.
TEST(WoundWait, GemstoneTwoHolderCycleResolvesWithoutDetectionAborts) {
  ObjectBase base;
  base.CreateObject("x", adt::MakeCounterSpec(0));
  base.CreateObject("y", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = Protocol::kGemstone,
                       .max_top_retries = 10,
                       .contention_policy = cc::ContentionPolicy::kWoundWait});
  const uint64_t wounds_before =
      cc::WoundsIssued().load(std::memory_order_relaxed);

  std::atomic<int> phase{0};
  TxnResult old_r, young_r;
  std::thread older([&] {
    old_r = exec.RunTransaction("old", [&](MethodCtx& txn) -> Value {
      txn.Invoke("x", "add", {1});
      if (phase.load(std::memory_order_acquire) == 0) {
        phase.store(1, std::memory_order_release);
        SpinUntil(phase, 2);
      }
      txn.Invoke("y", "add", {1});
      return Value();
    });
  });
  std::thread younger([&] {
    SpinUntil(phase, 1);
    young_r = exec.RunTransaction("young", [&](MethodCtx& txn) -> Value {
      txn.Invoke("y", "add", {1});
      if (phase.load(std::memory_order_acquire) == 1) {
        phase.store(2, std::memory_order_release);
      }
      txn.Invoke("x", "add", {1});
      return Value();
    });
  });
  older.join();
  younger.join();

  EXPECT_TRUE(old_r.committed);
  EXPECT_TRUE(young_r.committed) << "the victim retries and commits";
  EXPECT_GE(cc::WoundsIssued().load(std::memory_order_relaxed),
            wounds_before + 1);
  EXPECT_GE(exec.stats().AbortsFor(cc::AbortReason::kWounded), 1u);
  EXPECT_EQ(exec.stats().AbortsFor(cc::AbortReason::kDeadlock), 0u)
      << "the E1d abort cliff is detection aborts; wound–wait must not "
         "produce any in the canonical cycle";
  // Both adds landed exactly once per commit.
  TxnResult check = exec.RunTransaction("check", [](MethodCtx& txn) {
    return Value(txn.Invoke("x", "get").AsInt() +
                 txn.Invoke("y", "get").AsInt());
  });
  EXPECT_EQ(check.ret.AsInt(), 4);
}

// Classic wound-wait liveness requires the victim to RESTART WITH ITS
// ORIGINAL TIMESTAMP, so it ages toward oldest instead of re-entering
// ever younger (fresh-stamped retries livelock under a sustained storm —
// the E4 GEMSTONE storm found exactly that).  TxnResult::age_token is the
// carrier: a wounded attempt's token passed back pins the retry's age.
TEST(WoundWait, WoundedRetryKeepsItsAgeToken) {
  ObjectBase base;
  base.CreateObject("x", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = Protocol::kN2pl,
                       .granularity = cc::Granularity::kOperation,
                       .max_top_retries = 1,
                       .contention_policy = cc::ContentionPolicy::kWoundWait});
  auto noop = [](MethodCtx& txn) -> Value {
    txn.Invoke("x", "read");
    return Value();
  };
  // Fresh attempts draw strictly increasing environment serials...
  TxnResult a = exec.RunTransactionOnce("a", noop);
  TxnResult b = exec.RunTransactionOnce("b", noop);
  ASSERT_TRUE(a.committed);
  ASSERT_TRUE(b.committed);
  EXPECT_GT(a.age_token, 0u);
  EXPECT_GT(b.age_token, a.age_token);
  // ...and a pinned token is honoured verbatim: the retry runs at the
  // original age even though younger serials have been handed out since.
  TxnResult a_retry = exec.RunTransactionOnce("a", noop, a.age_token);
  ASSERT_TRUE(a_retry.committed);
  EXPECT_EQ(a_retry.age_token, a.age_token);
}

// --- backoff ----------------------------------------------------------------

// A REAL two-holder cycle under kBackoff: victims leave the queue and
// retry (counted), the cycle survives the budget and one side finally
// takes the detection abort — backoff delays detection, never disables it.
TEST(Backoff, VictimsRetryThenRealCyclesStillAbort) {
  ObjectBase base;
  base.CreateObject("x", adt::MakeRegisterSpec(0));
  base.CreateObject("y", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = Protocol::kN2pl,
                       .granularity = cc::Granularity::kOperation,
                       .max_top_retries = 20,
                       .contention_policy = cc::ContentionPolicy::kBackoff});
  const uint64_t backoffs_before =
      cc::DeadlockVictimBackoffs().load(std::memory_order_relaxed);

  std::atomic<int> phase{0};
  TxnResult a_r, b_r;
  std::thread a([&] {
    a_r = exec.RunTransaction("a", [&](MethodCtx& txn) -> Value {
      txn.Invoke("x", "write", {1});
      if (phase.load(std::memory_order_acquire) == 0) {
        phase.store(1, std::memory_order_release);
        SpinUntil(phase, 2);
      }
      txn.Invoke("y", "write", {1});
      return Value();
    });
  });
  std::thread b([&] {
    SpinUntil(phase, 1);
    b_r = exec.RunTransaction("b", [&](MethodCtx& txn) -> Value {
      txn.Invoke("y", "write", {2});
      if (phase.load(std::memory_order_acquire) == 1) {
        phase.store(2, std::memory_order_release);
      }
      txn.Invoke("x", "write", {2});
      return Value();
    });
  });
  a.join();
  b.join();

  EXPECT_TRUE(a_r.committed);
  EXPECT_TRUE(b_r.committed);
  EXPECT_GE(cc::DeadlockVictimBackoffs().load(std::memory_order_relaxed),
            backoffs_before + 1)
      << "the victim must have gone through counted backoff rounds";
  EXPECT_GE(exec.stats().AbortsFor(cc::AbortReason::kDeadlock), 1u)
      << "a genuine cycle must still abort after the backoff budget";
}

// --- O(1) kin test ----------------------------------------------------------

// Differential: the packed-stamp fast path agrees with the chain-walk
// reference on randomly generated execution forests (shared tops, shared
// ancestor prefixes, comparable and incomparable pairs, varying depths).
TEST(JournalKinTest, FastPathMatchesChainWalkOnRandomForests) {
  Rng rng(20260808);
  using Chain = std::vector<uint64_t>;
  uint64_t next_uid = 1;
  std::vector<Chain> pool;
  // Grow a forest of 6 tops; each new execution is either a fresh top or a
  // child of an existing execution (its chain = parent's chain with the
  // new uid prepended — chains run self..top).
  for (int i = 0; i < 120; ++i) {
    if (pool.empty() || rng.Bernoulli(0.15)) {
      pool.push_back({next_uid++});
    } else {
      Chain parent = pool[rng.Uniform(pool.size())];
      Chain child;
      child.push_back(next_uid++);
      child.insert(child.end(), parent.begin(), parent.end());
      pool.push_back(std::move(child));
    }
  }
  int comparable_pairs = 0;
  for (const Chain& a : pool) {
    AppliedJournal::Entry e;
    e.exec_uid = a.front();
    e.top_uid = a.back();
    e.chain = std::make_shared<const Chain>(a);
    for (const Chain& b : pool) {
      const bool fast = e.IncomparableWith(b);
      const bool walk = e.IncomparableWithChainWalk(b);
      ASSERT_EQ(fast, walk)
          << "entry chain size " << a.size() << " vs other size " << b.size();
      if (!fast) ++comparable_pairs;
    }
  }
  // The forest must actually contain kin pairs or the test is vacuous.
  EXPECT_GT(comparable_pairs, 120);  // at least every self-pair plus some
}

// The conflict scans must use the O(1) form: a contended nested NTO run
// performs ZERO chain walks.
TEST(JournalKinTest, ConflictScansTakeNoChainWalks) {
  ObjectBase base;
  base.CreateObject("reg", adt::MakeRegisterSpec(0));
  base.CreateObject("ctr", adt::MakeCounterSpec(0));
  Executor exec(base, {.protocol = Protocol::kNto,
                       .granularity = cc::Granularity::kStep,
                       .max_top_retries = 50});
  const uint64_t walks_before =
      JournalKinChainWalks().load(std::memory_order_relaxed);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(7 + t);
      for (int i = 0; i < 60; ++i) {
        exec.RunTransaction("w", [&](MethodCtx& txn) -> Value {
          txn.Invoke("reg", "write", {rng.Range(0, 9)});
          txn.InvokeParallel({{"ctr", "add", {1}}, {"reg", "read", {}}});
          return Value();
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_GT(exec.stats().committed.load(), 0u);
  EXPECT_EQ(JournalKinChainWalks().load(std::memory_order_relaxed),
            walks_before)
      << "a conflict scan fell back to the O(depth) chain walk";
}

// --- adaptive fold cadence --------------------------------------------------

namespace {

std::shared_ptr<const std::vector<uint64_t>> ChainOf(uint64_t uid) {
  return std::make_shared<const std::vector<uint64_t>>(
      std::vector<uint64_t>{uid});
}

void AppendOne(AppliedJournal& j, uint64_t top_counter) {
  JournalRecord r;
  r.seq = top_counter;
  r.exec_uid = top_counter;
  r.top_uid = top_counter;
  r.chain = ChainOf(top_counter);
  r.hts = std::make_shared<const cc::Hts>(cc::Hts::TopLevel(top_counter));
  r.op_id = 0;
  j.Append(std::move(r));
}

}  // namespace

TEST(AdaptiveFold, CadenceScalesWithGrowthAndArmsOnStuckWatermark) {
  AppliedJournal j(1);
  size_t applied = 0;
  auto apply = [&](const AppliedJournal::Entry&) { ++applied; };

  for (uint64_t i = 1; i <= 7; ++i) AppendOne(j, i);
  EXPECT_FALSE(j.WantsFold(8));
  AppendOne(j, 8);
  EXPECT_TRUE(j.WantsFold(8)) << "first firing: live count reaches base";

  // Everything folds (watermark above every top): growth=8 → cadence
  // clamp(4, 4, 64)=4 → armed at reserved 12.
  EXPECT_EQ(j.Fold(100, apply, /*rearm_base=*/8), 8u);
  EXPECT_EQ(j.NextFoldAt(), 12u);
  EXPECT_FALSE(j.WantsFold(8));
  for (uint64_t i = 9; i <= 11; ++i) AppendOne(j, i);
  EXPECT_FALSE(j.WantsFold(8));
  AppendOne(j, 12);
  EXPECT_TRUE(j.WantsFold(8))
      << "adaptive firing at the armed append target, not the live count";

  // Stuck watermark: nothing folds, but the trigger re-arms anyway — the
  // poll must NOT keep firing (the old modulo cadence re-locked forever).
  EXPECT_EQ(j.Fold(0, apply, /*rearm_base=*/8), 0u);
  EXPECT_GT(j.NextFoldAt(), j.reserved());
  EXPECT_FALSE(j.WantsFold(8));

  // A growth burst scales the cadence up, clamped at 8×base.
  for (uint64_t i = 0; i < 400; ++i) AppendOne(j, 13 + i);
  EXPECT_GT(j.Fold(100000, apply, /*rearm_base=*/8), 0u);
  EXPECT_LE(j.NextFoldAt(), j.reserved() + 8 * 8)
      << "cadence must clamp at 8×base";
  EXPECT_GE(j.NextFoldAt(), j.reserved() + 4) << "and never below base/2";
}

TEST(AdaptiveFold, DisabledFoldingTakesZeroJournalMutexes) {
  ObjectBase base;
  base.CreateObject("reg", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = Protocol::kNto,
                       .granularity = cc::Granularity::kStep,
                       .journal_fold_threshold = 0});
  const uint64_t locks_before =
      JournalMutexAcquisitions().load(std::memory_order_relaxed);
  for (int i = 0; i < 200; ++i) {
    exec.RunTransaction("w", [&](MethodCtx& txn) -> Value {
      txn.Invoke("reg", "write", {i});
      return Value();
    });
  }
  EXPECT_EQ(exec.stats().committed.load(), 200u);
  EXPECT_EQ(JournalMutexAcquisitions().load(std::memory_order_relaxed),
            locks_before)
      << "fold=0 must keep the step path free of journal mutexes, "
         "telemetry included";
}

// --- contention telemetry ---------------------------------------------------

// The counters are pure relaxed atomics folded into existing structures:
// an uncontended run counts its steps, charges no conflicts/waits/aborts,
// and takes no journal mutex (fold disabled) — i.e. telemetry costs the
// step path nothing it did not already pay.
TEST(ContentionTelemetry, CountsStepsWithoutNewMutexes) {
  ObjectBase base;
  const uint32_t reg_id = base.CreateObject("reg", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = Protocol::kNto,
                       .granularity = cc::Granularity::kStep,
                       .journal_fold_threshold = 0});
  const uint64_t locks_before =
      JournalMutexAcquisitions().load(std::memory_order_relaxed);
  const int kTxns = 100;
  for (int i = 0; i < kTxns; ++i) {
    exec.RunTransaction("w", [&](MethodCtx& txn) -> Value {
      txn.Invoke("reg", "write", {i});
      return Value();
    });
  }
  const ContentionTelemetry& t = base.Get(reg_id).contention();
  EXPECT_EQ(t.steps.load(std::memory_order_relaxed),
            static_cast<uint64_t>(kTxns));
  EXPECT_EQ(t.lock_conflicts.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(t.journal_conflicts.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(t.aborts.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(t.wait_ns.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(JournalMutexAcquisitions().load(std::memory_order_relaxed),
            locks_before);
}

// Contended locking run: conflicts and waits are charged to the object
// that suffered them.
TEST(ContentionTelemetry, ChargesLockConflictsAndWaitsToTheHotObject) {
  ObjectBase base;
  const uint32_t hot_id = base.CreateObject("hot", adt::MakeRegisterSpec(0));
  base.CreateObject("cold", adt::MakeRegisterSpec(0));
  Executor exec(base, {.protocol = Protocol::kN2pl,
                       .granularity = cc::Granularity::kOperation,
                       .max_top_retries = 50});
  // Start barrier + in-transaction hold time: the exclusive op lock is
  // held from Invoke to commit, so overlapping transactions MUST block —
  // without this, microsecond transactions can serialise by accident and
  // the conflict counters legitimately stay zero.
  std::atomic<int> ready{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < 4) std::this_thread::yield();
      for (int i = 0; i < 20; ++i) {
        exec.RunTransaction("w", [&](MethodCtx& txn) -> Value {
          txn.Invoke("hot", "write", {1});
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return Value();
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  const ContentionTelemetry& hot = base.Get(hot_id).contention();
  // Single-object N2PL waits cannot deadlock, so no attempt ever aborts:
  // exactly one counted step per transaction.
  EXPECT_EQ(hot.steps.load(std::memory_order_relaxed), 80u);
  EXPECT_GT(hot.lock_conflicts.load(std::memory_order_relaxed), 0u)
      << "4 threads hammering one exclusive op lock must conflict";
  EXPECT_GT(hot.wait_ns.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace objectbase::rt
