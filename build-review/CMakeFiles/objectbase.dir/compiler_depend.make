# Empty compiler generated dependencies file for objectbase.
# This may be replaced when dependencies are built.
