// Property test: conflict tables are SOUND over-approximations of
// Definition 3.  For random states s and random step pairs (t1, t2), if the
// table says t1 does NOT conflict with t2 (given t1's and t2's actual
// return values on s), then executing t2;t1 must be legal on s with the
// same returns and the same final state — Definition 3 applied literally.
//
// The converse (completeness) is intentionally not asserted: tables may be
// conservative (e.g. vacuously-commuting pairs marked conflicting).
#include <gtest/gtest.h>

#include <memory>

#include "src/adt/adt.h"
#include "src/adt/bag_adt.h"
#include "src/adt/bank_account_adt.h"
#include "src/adt/directory_adt.h"
#include "src/adt/btree_dictionary_adt.h"
#include "src/adt/counter_adt.h"
#include "src/adt/queue_adt.h"
#include "src/adt/register_adt.h"
#include "src/adt/set_adt.h"
#include "src/common/rng.h"

namespace objectbase::adt {
namespace {

struct AdtCase {
  std::string name;
  std::function<std::shared_ptr<const AdtSpec>()> make_spec;
  // Samples arguments for the named operation.  Small domains maximise
  // collision probability, which is where conflicts live.
  std::function<Args(std::string_view, Rng&)> make_args;
  int warmup_ops = 12;  // random ops applied to build a random state
};

Args KeyArg(Rng& rng) { return {Value(rng.Range(0, 3))}; }

std::vector<AdtCase> Cases() {
  return {
      {"register", [] { return MakeRegisterSpec(5); },
       [](std::string_view op, Rng& rng) -> Args {
         if (op == "read") return {};
         return {Value(rng.Range(-3, 3))};
       },
       8},
      {"counter", [] { return MakeCounterSpec(0); },
       [](std::string_view op, Rng& rng) -> Args {
         if (op == "get") return {};
         return {Value(rng.Range(-3, 3))};
       },
       8},
      {"set", [] { return MakeSetSpec(); },
       [](std::string_view op, Rng& rng) -> Args {
         if (op == "size") return {};
         return KeyArg(rng);
       },
       12},
      {"queue", [] { return MakeQueueSpec(); },
       [](std::string_view op, Rng& rng) -> Args {
         if (op == "enqueue") return {Value(rng.Range(0, 3))};
         return {};
       },
       10},
      {"bank_account", [] { return MakeBankAccountSpec(10); },
       [](std::string_view op, Rng& rng) -> Args {
         if (op == "balance") return {};
         return {Value(rng.Range(1, 8))};
       },
       10},
      {"btree_dictionary", [] { return MakeBTreeDictionarySpec(4); },
       [](std::string_view op, Rng& rng) -> Args {
         if (op == "count") return {};
         if (op == "put") return {Value(rng.Range(0, 3)), Value(rng.Range(0, 9))};
         if (op == "range_count") {
           int64_t lo = rng.Range(0, 3);
           return {Value(lo), Value(lo + rng.Range(0, 2))};
         }
         return KeyArg(rng);
       },
       12},
      {"bag", [] { return MakeBagSpec(); },
       [](std::string_view op, Rng& rng) -> Args {
         if (op == "total") return {};
         return KeyArg(rng);
       },
       10},
      {"directory", [] { return MakeDirectorySpec(); },
       [](std::string_view op, Rng& rng) -> Args {
         static const char* kNames[] = {"a", "b", "c"};
         std::string name = kNames[rng.Uniform(3)];
         if (op == "entries") return {};
         if (op == "bind" || op == "rebind") {
           return {Value(name), Value(std::to_string(rng.Range(0, 4)))};
         }
         return {Value(name)};
       },
       10},
  };
}

class CommutativityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CommutativityTest, TablesAreSound) {
  AdtCase c = Cases()[GetParam()];
  auto spec = c.make_spec();
  Rng rng(0xC0FFEE + GetParam());
  auto op_names = spec->OpNames();
  int checked_commuting = 0;

  for (int trial = 0; trial < 4000; ++trial) {
    // Random state.
    auto state = spec->MakeInitialState();
    int warm = static_cast<int>(rng.Uniform(c.warmup_ops + 1));
    for (int i = 0; i < warm; ++i) {
      std::string_view op = op_names[rng.Uniform(op_names.size())];
      spec->FindOp(op)->apply(*state, c.make_args(op, rng));
    }
    // Random step pair.
    std::string op1(op_names[rng.Uniform(op_names.size())]);
    std::string op2(op_names[rng.Uniform(op_names.size())]);
    Args args1 = c.make_args(op1, rng);
    Args args2 = c.make_args(op2, rng);

    // Execute t1;t2 on a clone to learn the actual return values.
    auto probe = state->Clone();
    Value r1 = spec->FindOp(op1)->apply(*probe, args1).ret;
    Value r2 = spec->FindOp(op2)->apply(*probe, args2).ret;

    adt::StepView t1{op1, &args1, &r1};
    adt::StepView t2{op2, &args2, &r2};
    if (spec->StepConflicts(t1, t2)) continue;  // table is allowed to say so
    ++checked_commuting;
    EXPECT_TRUE(StepsCommuteOnState(*spec, *state, op1, args1, op2, args2))
        << c.name << ": table says " << op1 << ArgsToString(args1) << "->"
        << r1.ToString() << " commutes with " << op2 << ArgsToString(args2)
        << "->" << r2.ToString() << " but it does not on state "
        << state->ToString();
    if (HasFailure()) break;
  }
  // The sweep must actually exercise commuting pairs, or it proves nothing.
  EXPECT_GT(checked_commuting, 100) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllAdts, CommutativityTest,
                         ::testing::Range<size_t>(0, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return Cases()[info.param].name;
                         });

// Operation-granularity tables must dominate step-granularity ones: if two
// operations never conflict at op level, no step pair of theirs may
// conflict either (otherwise operation locking would be UNSOUND, not just
// conservative).
class OpDominatesStepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OpDominatesStepTest, OpTableDominates) {
  AdtCase c = Cases()[GetParam()];
  auto spec = c.make_spec();
  Rng rng(0xBEEF + GetParam());
  auto op_names = spec->OpNames();
  for (int trial = 0; trial < 4000; ++trial) {
    auto state = spec->MakeInitialState();
    for (int i = 0; i < 6; ++i) {
      std::string_view op = op_names[rng.Uniform(op_names.size())];
      spec->FindOp(op)->apply(*state, c.make_args(op, rng));
    }
    std::string op1(op_names[rng.Uniform(op_names.size())]);
    std::string op2(op_names[rng.Uniform(op_names.size())]);
    if (spec->OpConflicts(op1, op2)) continue;
    Args args1 = c.make_args(op1, rng);
    Args args2 = c.make_args(op2, rng);
    auto probe = state->Clone();
    Value r1 = spec->FindOp(op1)->apply(*probe, args1).ret;
    Value r2 = spec->FindOp(op2)->apply(*probe, args2).ret;
    adt::StepView t1{op1, &args1, &r1};
    adt::StepView t2{op2, &args2, &r2};
    EXPECT_FALSE(spec->StepConflicts(t1, t2))
        << c.name << ": " << op1 << "/" << op2
        << " commute at op level but conflict at step level";
    if (HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAdts, OpDominatesStepTest,
                         ::testing::Range<size_t>(0, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return Cases()[info.param].name;
                         });

}  // namespace
}  // namespace objectbase::adt
