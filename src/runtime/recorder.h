// Recorder: builds the formal history (E, <, B, S) of a run.
//
// Every execution/step the runtime performs is mirrored into a
// model::History so that the formal machinery (legality, SG(h), Theorem 2's
// serialiser, Theorem 5's graphs) can check the run after the fact.  The
// per-object application order is captured inside each object's apply
// critical section, so it is exactly the order in which the state
// transformers composed — the concrete form of the < relation on local
// steps.
//
// Recording is optional (benchmarks disable it); when disabled all methods
// are cheap no-ops.
#ifndef OBJECTBASE_RUNTIME_RECORDER_H_
#define OBJECTBASE_RUNTIME_RECORDER_H_

#include <atomic>
#include <mutex>

#include "src/model/history.h"
#include "src/runtime/object_base.h"

namespace objectbase::rt {

class Recorder {
 public:
  explicit Recorder(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Clears the history and snapshots every object's current state as the
  /// S component.  Call before a recorded run, after objects are created.
  void Reset(const ObjectBase& base);

  /// Global monotonic stamp (also used for undo ordering).
  uint64_t NextSeq() { return seq_.fetch_add(1) + 1; }

  /// Registers a new method execution; returns its model id.
  model::ExecId BeginExecution(model::ExecId parent, model::ObjectId object,
                               const std::string& method);

  void MarkAborted(model::ExecId exec);

  /// Records a local step.  MUST be called while the caller still holds the
  /// object's apply serialisation (state_mu or equivalent), so that
  /// object_order matches the true application order.
  void RecordLocalStep(model::ExecId exec, uint32_t po_index,
                       model::ObjectId object, const std::string& op,
                       const Args& args, const Value& ret,
                       uint64_t start_seq, uint64_t end_seq);

  /// Records a message step (the invocation that created `callee`).
  void RecordMessageStep(model::ExecId exec, uint32_t po_index,
                         model::ExecId callee, uint64_t start_seq,
                         uint64_t end_seq);

  /// Deep-copies the history accumulated so far.
  model::History Snapshot() const;

 private:
  bool enabled_;
  std::atomic<uint64_t> seq_{0};
  mutable std::mutex mu_;
  model::History history_;
};

}  // namespace objectbase::rt

#endif  // OBJECTBASE_RUNTIME_RECORDER_H_
