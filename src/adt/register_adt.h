// Register: the classical read/write data item, plus a blind increment.
//
// This is the degenerate object type of "classical" concurrency control:
// with only read/write operations the model collapses to Eswaran et al.'s
// setting, which makes Register the baseline against which semantic ADTs
// (Counter, Set, Queue, ...) are compared in experiment E3.
//
// Operations:
//   read()        -> current value                (read-only)
//   write(v)      -> none
//   increment(d)  -> none   (blind add; increments commute with each other)
#ifndef OBJECTBASE_ADT_REGISTER_ADT_H_
#define OBJECTBASE_ADT_REGISTER_ADT_H_

#include <memory>

#include "src/adt/adt.h"

namespace objectbase::adt {

/// Creates a Register spec with the given initial value.
std::shared_ptr<const AdtSpec> MakeRegisterSpec(int64_t initial = 0);

}  // namespace objectbase::adt

#endif  // OBJECTBASE_ADT_REGISTER_ADT_H_
