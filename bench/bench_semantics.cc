// E3 — Semantic commutativity vs read/write conflict tables.
//
// Claim (Section 1(b), Definition 3): object bases issue operations richer
// than read/write; exploiting their commutativity (Counter.add commutes
// with Counter.add) admits concurrency that a classical read/write table
// (Register.increment treated via read+write locks… here: increment
// conflicts with increment) cannot.
#include "bench/bench_util.h"

using namespace objectbase;  // NOLINT

int main() {
  bench::Banner("E3: semantic ADTs vs read/write registers",
                "the same add-heavy workload over Counters (adds commute) "
                "vs Registers (classical conflicts), N2PL step locks");
  const int scale = bench::Scale();

  TablePrinter table({"table", "objects", "threads", "tput/s", "abort-ratio",
                      "deadlock", "p99-ms"});
  for (bool counters : {false, true}) {
    for (int objects : {1, 8}) {
      for (int threads : {1, 4, 8}) {
        workload::SemanticParams p;
        p.objects = objects;
        p.ops_per_txn = 4;
        p.read_fraction = 0.05;
        p.use_counters = counters;
        p.spin_per_op = 2000;
        workload::WorkloadSpec spec = workload::MakeSemanticSpec(p);
        spec.threads = threads;
        spec.txns_per_thread = 150 * scale;
        spec.seed = 11 + objects * threads;
        workload::RunMetrics m = bench::RunOnce(
            [&](rt::ObjectBase& base) { workload::SetupSemantic(base, p); },
            spec, rt::Protocol::kN2pl, cc::Granularity::kStep);
        table.AddRow({counters ? "semantic (counter)" : "read/write (register)",
                      TablePrinter::Fmt(int64_t{objects}),
                      TablePrinter::Fmt(int64_t{threads}),
                      TablePrinter::Fmt(m.Throughput(), 0),
                      TablePrinter::Fmt(m.AbortRatio(), 3),
                      TablePrinter::Fmt(m.deadlocks),
                      TablePrinter::Fmt(
                          m.latency_ns.Percentile(0.99) / 1e6, 2)});
        bench::JsonLine("semantics")
            .Field("name", counters ? "counter" : "register")
            .Field("objects", objects)
            .Field("threads", threads)
            .Field("ns_per_op", m.Throughput() > 0 ? 1e9 / m.Throughput() : 0.0)
            .Field("throughput", m.Throughput())
            .Field("abort_ratio", m.AbortRatio())
            .Emit();
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape: across several objects the semantic table "
              "scales with threads\n(adds commute; no lock-order cycles) "
              "while read-modify-write register traffic\ncollapses under "
              "deadlock/retry churn.  On a single hot object both are "
              "bounded by\nthe object's lock table itself; the semantic "
              "run still aborts far less.\n");
  return 0;
}
