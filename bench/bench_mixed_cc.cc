// E6 — Modular per-object synchronisation vs a uniform policy.
//
// Claim (Section 2 / Theorem 5): letting each object run its most suitable
// intra-object algorithm (the B-tree with latch crabbing; commuting
// counters optimistic) under an inter-object compatibility layer can beat
// imposing one uniform policy on every object.
#include "bench/bench_util.h"

#include "src/cc/mixed_controller.h"

using namespace objectbase;  // NOLINT

int main() {
  bench::Banner("E6: per-object (MIXED) vs uniform synchronisation",
                "dictionary-heavy mix: B-tree crabbing + certifier vs "
                "uniform N2PL / GEMSTONE (paper Section 2, Theorem 5)");
  const int scale = bench::Scale();

  TablePrinter table({"config", "threads", "tput/s", "abort-ratio",
                      "p99-ms"});
  struct Config {
    const char* name;
    rt::Protocol protocol;
  };
  for (Config cfg : {Config{"GEMSTONE (uniform)", rt::Protocol::kGemstone},
                     Config{"N2PL (uniform)", rt::Protocol::kN2pl},
                     Config{"MIXED (per-object)", rt::Protocol::kMixed}}) {
    for (int threads : {2, 4, 8}) {
      workload::DictionaryParams p;
      p.dicts = 2;
      p.keyspace = 2048;
      p.theta = 0.2;
      p.ops_per_txn = 6;
      p.spin_per_op = 1000;
      workload::WorkloadSpec spec = workload::MakeDictionarySpec(p);
      spec.threads = threads;
      spec.txns_per_thread = 120 * scale;
      spec.seed = 13 + threads;

      rt::ObjectBase base;
      workload::SetupDictionary(base, p);
      rt::Executor exec(base, {.protocol = cfg.protocol,
                               .granularity = cc::Granularity::kStep,
                               .record = false});
      if (cfg.protocol == rt::Protocol::kMixed) {
        // Counters of commuting adds: optimistic; dictionaries default to
        // crabbing via supports_concurrent_apply.
        exec.SetIntraPolicy("dict-total", cc::IntraPolicy::kOptimistic);
      }
      workload::RunMetrics m = workload::RunWorkload(exec, spec);
      table.AddRow({cfg.name, TablePrinter::Fmt(int64_t{threads}),
                    TablePrinter::Fmt(m.Throughput(), 0),
                    TablePrinter::Fmt(m.AbortRatio(), 3),
                    TablePrinter::Fmt(
                        m.latency_ns.Percentile(0.99) / 1e6, 2)});
      bench::JsonLine("mixed_cc")
          .Field("name", cfg.name)
          .Field("threads", threads)
          .Field("ns_per_op", m.Throughput() > 0 ? 1e9 / m.Throughput() : 0.0)
          .Field("throughput", m.Throughput())
          .Field("abort_ratio", m.AbortRatio())
          .Field("p99_ms", m.latency_ns.Percentile(0.99) / 1e6)
          .Emit();
    }
  }
  table.Print();
  std::printf("\nExpected shape (the Section 6 trade-off, stated as open "
              "by the paper): GEMSTONE\ncollapses under contention (whole-"
              "object locks + deadlock churn).  Uniform N2PL\nand MIXED "
              "both scale flat and dominate it.  MIXED buys each object "
              "local freedom\n(the B-tree runs its own latches, counters "
              "go optimistic) and pays for it in\ninter-object "
              "certification overhead — the \"more complex and stringent "
              "inter-object\nsynchronisation\" the paper predicts as the "
              "price (Section 2).\n");
  return 0;
}
